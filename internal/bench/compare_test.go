package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mpq/internal/workload"
)

func reportWith(cases ...JSONCase) *JSONReport {
	return &JSONReport{Experiment: "figure12", Cases: cases}
}

func baseCase() JSONCase {
	return JSONCase{
		Case: "chain-1p/tables=4", Shape: "chain", Params: 1, Tables: 4,
		TimeMs: 1.2, CreatedPlans: 73, SolvedLPs: 967, FinalPlans: 3,
		Workers: 1, Repetitions: 3,
	}
}

func TestCompareIdenticalReports(t *testing.T) {
	base := reportWith(baseCase())
	failures, warnings := Compare(base, reportWith(baseCase()), DefaultCompareOptions())
	if len(failures) != 0 || len(warnings) != 0 {
		t.Errorf("identical reports: failures=%v warnings=%v", failures, warnings)
	}
}

func TestCompareDriftClassification(t *testing.T) {
	opts := DefaultCompareOptions()
	cases := []struct {
		name     string
		mutate   func(*JSONCase)
		failWith string
		warnWith string
	}{
		{
			name:     "plan count drift fails",
			mutate:   func(c *JSONCase) { c.CreatedPlans += 1 },
			failWith: "created_plans",
		},
		{
			name:     "final plan drift fails",
			mutate:   func(c *JSONCase) { c.FinalPlans -= 1 },
			failWith: "final_plans",
		},
		{
			name:     "lp drift beyond tolerance fails",
			mutate:   func(c *JSONCase) { c.SolvedLPs += int64(float64(c.SolvedLPs)*opts.LPTol) + 10 },
			failWith: "solved_lps",
		},
		{
			name:   "lp drift within tolerance passes",
			mutate: func(c *JSONCase) { c.SolvedLPs += 5 }, // 5/967 < 2%
		},
		{
			name:     "time drift only warns",
			mutate:   func(c *JSONCase) { c.TimeMs *= 10 },
			warnWith: "time_ms",
		},
		{
			name:     "worker mismatch fails",
			mutate:   func(c *JSONCase) { c.Workers = 8 },
			failWith: "workers",
		},
		{
			name:     "missing case fails",
			mutate:   func(c *JSONCase) { c.Case = "renamed" },
			failWith: "missing",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := baseCase()
			tc.mutate(&cur)
			failures, warnings := Compare(reportWith(baseCase()), reportWith(cur), opts)
			if tc.failWith == "" && len(failures) > 0 {
				t.Fatalf("unexpected failures: %v", failures)
			}
			if tc.failWith != "" {
				if len(failures) != 1 || failures[0].Field != tc.failWith {
					t.Fatalf("failures = %v, want one %q", failures, tc.failWith)
				}
				if !strings.Contains(failures[0].String(), "FAIL") {
					t.Errorf("failure renders as %q", failures[0])
				}
			}
			if tc.warnWith != "" {
				if len(warnings) != 1 || warnings[0].Field != tc.warnWith {
					t.Fatalf("warnings = %v, want one %q", warnings, tc.warnWith)
				}
				if !warnings[0].WarnOnly || !strings.Contains(warnings[0].String(), "warn") {
					t.Errorf("warning renders as %q", warnings[0])
				}
			}
		})
	}
}

func TestCompareIgnoresExtraCurrentCases(t *testing.T) {
	extra := baseCase()
	extra.Case = "chain-1p/tables=5"
	extra.SolvedLPs = 99999
	failures, warnings := Compare(reportWith(baseCase()), reportWith(baseCase(), extra), DefaultCompareOptions())
	if len(failures) != 0 || len(warnings) != 0 {
		t.Errorf("extra cases should not drift: failures=%v warnings=%v", failures, warnings)
	}
}

// TestJSONReportRoundTrip: a report written by FormatJSON loads back
// unchanged, so the CI gate compares exactly what the snapshot tool
// wrote.
func TestJSONReportRoundTrip(t *testing.T) {
	series := []*Series{{
		Shape:  workload.Chain,
		Params: 1,
		Points: []Point{{
			Tables: 4, MedianTime: 1234 * time.Microsecond,
			MedianPlans: 73, MedianLPs: 967, MedianFinal: 3,
			Repetitions: 3, Workers: 1,
		}},
	}}
	var buf bytes.Buffer
	if err := FormatJSON(&buf, series); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJSONReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	built := BuildJSONReport(series)
	if len(loaded.Cases) != 1 || loaded.Cases[0] != built.Cases[0] {
		t.Errorf("round trip changed the report: %+v vs %+v", loaded.Cases[0], built.Cases[0])
	}
	failures, warnings := Compare(built, loaded, DefaultCompareOptions())
	if len(failures) != 0 || len(warnings) != 0 {
		t.Errorf("round-tripped report drifts: %v %v", failures, warnings)
	}
}
