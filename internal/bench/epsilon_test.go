package bench

import (
	"strings"
	"testing"

	"mpq/internal/workload"
)

func TestRunEpsilon(t *testing.T) {
	ms, err := RunEpsilon(EpsilonConfig{
		Specs:    []PickSpec{{Shape: workload.Chain, Params: 1, Tables: 5}},
		Epsilons: []float64{0, 0.1},
		Points:   32,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d measurements, want 2", len(ms))
	}
	exact, approx := ms[0], ms[1]
	if exact.Epsilon != 0 || approx.Epsilon != 0.1 {
		t.Fatalf("epsilons %v/%v, want 0/0.1", exact.Epsilon, approx.Epsilon)
	}
	// The exact row certifies against itself: regret exactly 1, no
	// reductions — a self-check of the certification path.
	if exact.MaxRegret != 1 {
		t.Errorf("exact self-regret = %v, want exactly 1", exact.MaxRegret)
	}
	if exact.PlanReduction != 0 || exact.LPReduction != 0 {
		t.Errorf("exact reductions %v/%v, want 0/0", exact.PlanReduction, exact.LPReduction)
	}
	// The ε tier honors the contract. (Set shrinkage is the point of
	// the knob but not a per-query invariant — the asymmetric prune
	// can keep a different, occasionally larger, representative set on
	// small queries — so only the contract is asserted.)
	if bound := (1 + approx.Epsilon) * (1 + 1e-9); approx.MaxRegret > bound {
		t.Errorf("certified regret %v exceeds bound %v", approx.MaxRegret, bound)
	}
	if approx.PlanReduction != 1-float64(approx.Candidates)/float64(exact.Candidates) {
		t.Errorf("plan reduction %v does not match candidate counts %d/%d",
			approx.PlanReduction, approx.Candidates, exact.Candidates)
	}
	for _, m := range ms {
		if m.Prep.CreatedPlans == 0 || m.Prep.Geometry.LPs == 0 || m.PickNs <= 0 || m.Points != 32 {
			t.Errorf("eps=%g measurement incomplete: %+v", m.Epsilon, m)
		}
		if m.Candidates != m.Prep.FinalPlans {
			t.Errorf("eps=%g served %d candidates, optimizer reported %d",
				m.Epsilon, m.Candidates, m.Prep.FinalPlans)
		}
	}

	cases := EpsilonMeasurementCases(ms)
	if len(cases) != 2 {
		t.Fatalf("got %d cases", len(cases))
	}
	if got := cases[0].Case; got != "epsilon/chain-1p/tables=5/eps=0" {
		t.Errorf("case name %q", got)
	}
	if got := cases[1].Case; !strings.HasSuffix(got, "/eps=0.1") {
		t.Errorf("case name %q", got)
	}
	c := cases[1]
	if c.Epsilon != 0.1 || c.MaxRegret != approx.MaxRegret ||
		c.FinalPlans != approx.Candidates || c.Workers != 1 {
		t.Errorf("case fields do not mirror the measurement: %+v", c)
	}
}

// TestCompareGatesEpsilonCases: ε = 0 rows gate on exact counts like
// every other case; ε > 0 rows gate on the certified regret contract
// and tolerate count drift.
func TestCompareGatesEpsilonCases(t *testing.T) {
	base := &JSONReport{
		Cases: []JSONCase{{Case: "chain-1p/tables=3", Workers: 1, CreatedPlans: 10, SolvedLPs: 100, FinalPlans: 2, TimeMs: 1}},
		EpsilonCases: []JSONCase{
			{Case: "epsilon/chain-1p/tables=5/eps=0", Workers: 1,
				CreatedPlans: 40, SolvedLPs: 400, FinalPlans: 8, TimeMs: 0.1, MaxRegret: 1},
			{Case: "epsilon/chain-1p/tables=5/eps=0.1", Workers: 1,
				CreatedPlans: 30, SolvedLPs: 300, FinalPlans: 4, TimeMs: 0.1,
				Epsilon: 0.1, MaxRegret: 1.04},
		},
	}
	ok := &JSONReport{
		Cases: base.Cases,
		EpsilonCases: []JSONCase{
			base.EpsilonCases[0],
			{Case: "epsilon/chain-1p/tables=5/eps=0.1", Workers: 1,
				// Counts drifted — fine for an approximate row, the
				// contract still holds.
				CreatedPlans: 25, SolvedLPs: 250, FinalPlans: 3, TimeMs: 0.1,
				Epsilon: 0.1, MaxRegret: 1.0999},
		},
	}
	if failures, _ := Compare(base, ok, DefaultCompareOptions()); len(failures) != 0 {
		t.Errorf("in-contract epsilon rows failed the gate: %v", failures)
	}

	broken := &JSONReport{
		Cases: base.Cases,
		EpsilonCases: []JSONCase{
			base.EpsilonCases[0],
			{Case: "epsilon/chain-1p/tables=5/eps=0.1", Workers: 1,
				CreatedPlans: 30, SolvedLPs: 300, FinalPlans: 4, TimeMs: 0.1,
				Epsilon: 0.1, MaxRegret: 1.2},
		},
	}
	failures, _ := Compare(base, broken, DefaultCompareOptions())
	found := false
	for _, d := range failures {
		if d.Field == "max_regret" {
			found = true
		}
	}
	if !found {
		t.Errorf("out-of-contract regret did not fail the gate: %v", failures)
	}

	retiered := &JSONReport{
		Cases: base.Cases,
		EpsilonCases: []JSONCase{
			base.EpsilonCases[0],
			{Case: "epsilon/chain-1p/tables=5/eps=0.1", Workers: 1,
				CreatedPlans: 30, SolvedLPs: 300, FinalPlans: 4, TimeMs: 0.1,
				Epsilon: 0.25, MaxRegret: 1.2},
		},
	}
	failures, _ = Compare(base, retiered, DefaultCompareOptions())
	found = false
	for _, d := range failures {
		if d.Field == "epsilon" {
			found = true
		}
	}
	if !found {
		t.Errorf("re-tiered epsilon row did not fail the gate: %v", failures)
	}

	drifted := &JSONReport{
		Cases: base.Cases,
		EpsilonCases: []JSONCase{
			{Case: "epsilon/chain-1p/tables=5/eps=0", Workers: 1,
				CreatedPlans: 41, SolvedLPs: 400, FinalPlans: 8, TimeMs: 0.1, MaxRegret: 1},
			base.EpsilonCases[1],
		},
	}
	failures, _ = Compare(base, drifted, DefaultCompareOptions())
	found = false
	for _, d := range failures {
		if d.Field == "created_plans" {
			found = true
		}
	}
	if !found {
		t.Errorf("exact-row plan drift did not fail the gate: %v", failures)
	}
}
