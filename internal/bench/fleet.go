package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"mpq/internal/core"
	"mpq/internal/fleet"
	"mpq/internal/geometry"
	"mpq/internal/serve"
	"mpq/internal/workload"
)

// FleetConfig controls the fleet-serving experiment (mpqbench -fleet):
// N in-process servers share one on-disk plan-set store; per spec, the
// first server computes and publishes, the rest must be served from
// the shared store, and all N then pick concurrently against the one
// prepared set. The experiment fails when fewer than (N−1)/N of the
// fleet's Prepares were served from the shared store — the
// amortization the subsystem exists for.
type FleetConfig struct {
	// Servers is the fleet size; zero selects 3.
	Servers int
	// Specs are the templates to prepare and pick against.
	Specs []PickSpec
	// Points is the number of pick points per server per throughput
	// round; zero selects 256.
	Points int
	// Seed offsets the workload generator and the point sampler
	// (matching the -picks experiment, so a shared spec prepares the
	// same template).
	Seed int64
	// Progress, when non-nil, receives a line per completed spec.
	Progress io.Writer
}

// FleetMeasurement reports one spec's fleet behavior.
type FleetMeasurement struct {
	Spec    PickSpec
	Servers int
	// Prep is the single computation's statistics (the gate's
	// deterministic plan/LP quantities); Candidates the served
	// plan-set size.
	Prep       core.Stats
	Candidates int
	// Prepares counts the fleet's Prepare calls for the spec (one per
	// server); SharedHits the subset served from the shared store.
	// HitRate is SharedHits/Prepares — (N−1)/N when the store did its
	// job.
	Prepares   int64
	SharedHits int64
	HitRate    float64
	// PickNs is the per-pick latency with all servers picking
	// concurrently (batched weighted-sum picks, best of three rounds).
	PickNs int64
	// NumCPU records the measuring machine's CPU count — concurrent
	// fleet throughput on a 1-CPU box is a serialization measurement,
	// and this makes that caveat machine-checkable.
	NumCPU int
}

// RunFleet executes the fleet-serving experiment over a fresh
// temporary shared directory. ctx cancels or deadline-bounds the whole
// experiment: it flows into every Prepare, Pick, and PickBatch issued
// against the in-process servers.
func RunFleet(ctx context.Context, cfg FleetConfig) ([]FleetMeasurement, error) {
	if cfg.Servers <= 0 {
		cfg.Servers = 3
	}
	if cfg.Servers < 2 {
		return nil, fmt.Errorf("bench: fleet needs at least 2 servers")
	}
	if cfg.Points <= 0 {
		cfg.Points = 256
	}
	dir, err := os.MkdirTemp("", "mpqfleet")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	var out []FleetMeasurement
	for i, spec := range cfg.Specs {
		// A fresh subdirectory per spec: a repeated spec must measure a
		// cold store again, not trip over its predecessor's documents.
		m, err := runFleetSpec(ctx, cfg, spec, filepath.Join(dir, fmt.Sprintf("spec%d", i)))
		if err != nil {
			return nil, fmt.Errorf("bench: fleet %s: %w", spec, err)
		}
		out = append(out, *m)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress,
				"fleet %s servers=%d cands=%d hit-rate=%.3f (%d/%d shared) pick=%v/pick cpus=%d\n",
				spec, m.Servers, m.Candidates, m.HitRate, m.SharedHits, m.Prepares,
				time.Duration(m.PickNs), m.NumCPU)
		}
	}
	return out, nil
}

func runFleetSpec(ctx context.Context, cfg FleetConfig, spec PickSpec, dir string) (*FleetMeasurement, error) {
	shared, err := fleet.NewDirStore(dir)
	if err != nil {
		return nil, err
	}
	tpl := serve.Template{Workload: workload.Config{
		Tables: spec.Tables,
		Params: spec.Params,
		Shape:  spec.Shape,
		Seed:   cfg.Seed + int64(spec.Tables),
	}}

	servers := make([]*serve.Server, cfg.Servers)
	for i := range servers {
		servers[i] = serve.New(serve.Options{Workers: 1, Index: true, Shared: shared})
		defer servers[i].Close()
	}

	// Server 0 computes and publishes; every sibling must be served
	// from the shared store.
	prep0, err := servers[0].Prepare(ctx, tpl)
	if err != nil {
		return nil, err
	}
	if prep0.Cached {
		return nil, fmt.Errorf("first Prepare was cached — stale shared dir")
	}
	key := prep0.Key
	for i := 1; i < len(servers); i++ {
		prep, err := servers[i].Prepare(ctx, tpl)
		if err != nil {
			return nil, err
		}
		if prep.Key != key {
			return nil, fmt.Errorf("server %d computed key %s, server 0 %s", i, prep.Key, key)
		}
	}
	var prepares, sharedHits int64
	for _, s := range servers {
		st := s.Stats()
		prepares += st.Prepares
		sharedHits += st.SharedHits
	}
	m := &FleetMeasurement{
		Spec:       spec,
		Servers:    cfg.Servers,
		Prep:       prep0.Stats,
		Candidates: prep0.NumPlans,
		Prepares:   prepares,
		SharedHits: sharedHits,
		NumCPU:     runtime.NumCPU(),
	}
	if prepares > 0 {
		m.HitRate = float64(sharedHits) / float64(prepares)
	}
	// The acceptance bar: at most one compute per fleet, i.e. at least
	// (N−1)/N of the Prepares served from the shared store.
	want := float64(cfg.Servers-1) / float64(cfg.Servers)
	if m.HitRate < want-1e-9 {
		return nil, fmt.Errorf("shared-store hit rate %.3f below (N-1)/N = %.3f (%d/%d prepares)",
			m.HitRate, want, sharedHits, prepares)
	}

	// Sample points and verify cross-server byte-identity before
	// timing: every server must answer every policy identically.
	ps, ok := servers[0].PlanSet(key)
	if !ok {
		return nil, fmt.Errorf("server 0 lost its plan set")
	}
	solver := geometry.NewContext()
	points, err := pickPoints(solver, ps.Space, cfg.Points, cfg.Seed+int64(spec.Tables)*7919)
	if err != nil {
		return nil, err
	}
	params := newPolicyParams(len(ps.Metrics))
	verify := points
	if len(verify) > 16 {
		verify = verify[:16]
	}
	for _, x := range verify {
		var first []string
		for si, s := range servers {
			var lines []string
			for p := 0; p < numPickPolicies; p++ {
				res, err := s.Pick(ctx, params.pickRequest(key, x, p))
				lines = append(lines, fmt.Sprintf("%v|%v", res.Choices, err))
			}
			if si == 0 {
				first = lines
				continue
			}
			if fmt.Sprint(lines) != fmt.Sprint(first) {
				return nil, fmt.Errorf("server %d picks at %v differ from server 0:\n  0: %v\n  %d: %v",
					si, x, first, si, lines)
			}
		}
	}

	// Throughput: all servers batch-pick the full point set
	// concurrently; best of three rounds, a collection in between.
	batch := serve.PickBatchRequest{
		Key:     key,
		Points:  points,
		Policy:  serve.PolicyWeightedSum,
		Weights: params.weights,
	}
	const rounds = 3
	for round := 0; round < rounds; round++ {
		runtime.GC()
		start := time.Now() //mpq:wallclock benchmark timing is the measurement itself
		var wg sync.WaitGroup
		errCh := make(chan error, len(servers))
		for _, s := range servers {
			wg.Add(1)
			go func(s *serve.Server) {
				defer wg.Done()
				if _, err := s.PickBatch(ctx, batch); err != nil {
					errCh <- err
				}
			}(s)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			return nil, err
		}
		ns := time.Since(start).Nanoseconds() / int64(len(servers)*len(points)) //mpq:wallclock benchmark timing is the measurement itself
		if round == 0 || ns < m.PickNs {
			m.PickNs = ns
		}
	}
	return m, nil
}

// pickRequest builds the PickRequest for policy p with the
// experiment's fixed preference parameters.
func (p policyParams) pickRequest(key string, x geometry.Vector, policy int) serve.PickRequest {
	req := serve.PickRequest{Key: key, Point: x}
	switch policy {
	case 0:
		req.Policy = serve.PolicyFrontier
	case 1:
		req.Policy = serve.PolicyWeightedSum
		req.Weights = p.weights
	case 2:
		req.Policy = serve.PolicyMinimizeSubjectTo
		req.Minimize = 0
		req.Bounds = p.bounds
	default:
		req.Policy = serve.PolicyLexicographic
		req.Order = p.order
	}
	return req
}

// FleetMeasurementCases converts the measurements into gate-comparable
// JSON cases: one row per spec carrying the compute's deterministic
// plan and LP counts (drift fails), the exact shared-store hit rate
// (drift fails), and the measured fleet pick latency as the time field
// (drift warns). NumCPU is informational.
func FleetMeasurementCases(ms []FleetMeasurement) []JSONCase {
	var cases []JSONCase
	for _, m := range ms {
		cases = append(cases, JSONCase{
			Case:          fmt.Sprintf("fleet/%s/servers=%d", m.Spec, m.Servers),
			Shape:         m.Spec.Shape.String(),
			Params:        m.Spec.Params,
			Tables:        m.Spec.Tables,
			NsPerOp:       m.PickNs,
			TimeMs:        float64(m.PickNs) / 1e6,
			CreatedPlans:  m.Prep.CreatedPlans,
			SolvedLPs:     m.Prep.Geometry.LPs,
			FinalPlans:    m.Prep.FinalPlans,
			Workers:       1,
			Repetitions:   m.Servers,
			NumCPU:        m.NumCPU,
			SharedHitRate: m.HitRate,
		})
	}
	return cases
}
