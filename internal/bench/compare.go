package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// LoadJSONReport reads a report written by FormatJSON (e.g. the
// committed BENCH_baseline.json snapshot).
func LoadJSONReport(r io.Reader) (*JSONReport, error) {
	var rep JSONReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: decoding report: %w", err)
	}
	if len(rep.Cases) == 0 {
		return nil, fmt.Errorf("bench: report without cases")
	}
	return &rep, nil
}

// CompareOptions sets the drift tolerances of Compare, as fractions of
// the baseline value.
type CompareOptions struct {
	// PlanTol bounds created-plans and final-plans drift (a failure
	// beyond it). Plan counts are deterministic for fixed seeds, so the
	// default is exact.
	PlanTol float64
	// LPTol bounds solved-LP drift (a failure beyond it). LP counts are
	// deterministic too, but a small tolerance leaves room for
	// intentional fast-path changes; drift beyond it must be a
	// conscious baseline update.
	LPTol float64
	// TimeTol bounds time drift; beyond it Compare only warns, since
	// wall-clock time is machine- and load-dependent.
	TimeTol float64
}

// DefaultCompareOptions returns the CI gate tolerances.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{PlanTol: 0, LPTol: 0.02, TimeTol: 0.75}
}

// Drift is one detected deviation between a baseline case and the
// current run.
type Drift struct {
	// Case is the baseline case name.
	Case string
	// Field names the drifted quantity.
	Field string
	// Baseline and Current are the compared values.
	Baseline, Current float64
	// Tolerance is the allowed relative drift.
	Tolerance float64
	// WarnOnly marks drifts that do not fail the gate (time).
	WarnOnly bool
}

func (d Drift) String() string {
	kind := "FAIL"
	if d.WarnOnly {
		kind = "warn"
	}
	return fmt.Sprintf("%s %s %s: baseline %.3f, current %.3f (drift %.1f%%, tolerance %.1f%%)",
		kind, d.Case, d.Field, d.Baseline, d.Current,
		100*relDrift(d.Baseline, d.Current), 100*d.Tolerance)
}

// Compare diffs the current report against a baseline. Every baseline
// case — the Figure 12 cases, the pick-throughput cases, the
// fleet-serving cases, the ε-approximation cases and the
// anytime-refinement cases alike — must be present in the current
// report with the same worker count; plan-count, LP-count and
// shared-hit-rate drift beyond tolerance fails, time drift only warns.
// ε > 0 rows are gated on their certified max regret staying within
// the (1+ε) contract instead of on exact counts. Extra current cases
// are ignored (the baseline defines the gate's coverage);
// ParallelCases are informational and never compared.
func Compare(baseline, current *JSONReport, opts CompareOptions) (failures, warnings []Drift) {
	byName := make(map[string]JSONCase,
		len(current.Cases)+len(current.PickCases)+len(current.FleetCases)+
			len(current.EpsilonCases)+len(current.AnytimeCases))
	for _, c := range current.Cases {
		byName[c.Case] = c
	}
	for _, c := range current.PickCases {
		byName[c.Case] = c
	}
	for _, c := range current.FleetCases {
		byName[c.Case] = c
	}
	for _, c := range current.EpsilonCases {
		byName[c.Case] = c
	}
	for _, c := range current.AnytimeCases {
		byName[c.Case] = c
	}
	gated := make([]JSONCase, 0,
		len(baseline.Cases)+len(baseline.PickCases)+len(baseline.FleetCases)+
			len(baseline.EpsilonCases)+len(baseline.AnytimeCases))
	gated = append(gated, baseline.Cases...)
	gated = append(gated, baseline.PickCases...)
	gated = append(gated, baseline.FleetCases...)
	gated = append(gated, baseline.EpsilonCases...)
	gated = append(gated, baseline.AnytimeCases...)
	for _, base := range gated {
		cur, ok := byName[base.Case]
		if !ok {
			failures = append(failures, Drift{Case: base.Case, Field: "missing"})
			continue
		}
		if cur.Workers != base.Workers {
			// Different worker counts still produce identical counts
			// (the parallel-wavefront determinism guarantee), but time
			// is incomparable; record it as a failure so the gate is
			// run with the baseline's configuration.
			failures = append(failures, Drift{
				Case: base.Case, Field: "workers",
				Baseline: float64(base.Workers), Current: float64(cur.Workers),
			})
			continue
		}
		check := func(field string, b, c, tol float64, warnOnly bool) {
			if relDrift(b, c) <= tol {
				return
			}
			d := Drift{Case: base.Case, Field: field, Baseline: b, Current: c, Tolerance: tol, WarnOnly: warnOnly}
			if warnOnly {
				warnings = append(warnings, d)
			} else {
				failures = append(failures, d)
			}
		}
		if base.Epsilon > 0 {
			// Approximate rows trade the exact-count gate for the
			// certified approximation contract: the ε tier must be
			// configured identically and its measured worst regret must
			// stay within (1+ε). Plan and LP counts of these rows shift
			// whenever the prune order or the per-level factor
			// allocation is tuned — the contract is the invariant, not a
			// particular count.
			if cur.Epsilon != base.Epsilon {
				failures = append(failures, Drift{
					Case: base.Case, Field: "epsilon",
					Baseline: base.Epsilon, Current: cur.Epsilon,
				})
				continue
			}
			if bound := (1 + base.Epsilon) * (1 + 1e-9); cur.MaxRegret > bound {
				failures = append(failures, Drift{
					Case: base.Case, Field: "max_regret",
					Baseline: bound, Current: cur.MaxRegret,
				})
			}
			check("time_ms", base.TimeMs, cur.TimeMs, opts.TimeTol, true)
			continue
		}
		check("created_plans", float64(base.CreatedPlans), float64(cur.CreatedPlans), opts.PlanTol, false)
		check("final_plans", float64(base.FinalPlans), float64(cur.FinalPlans), opts.PlanTol, false)
		check("solved_lps", float64(base.SolvedLPs), float64(cur.SolvedLPs), opts.LPTol, false)
		// Fleet cases carry the shared-store hit rate; it is exact by
		// construction ((N−1)/N), so it shares the plan tolerance. Rows
		// without a rate compare 0 against 0.
		check("shared_hit_rate", base.SharedHitRate, cur.SharedHitRate, opts.PlanTol, false)
		check("time_ms", base.TimeMs, cur.TimeMs, opts.TimeTol, true)
	}
	return failures, warnings
}

// relDrift is |current-baseline| relative to the baseline (at least 1,
// so zero baselines do not divide by zero).
func relDrift(baseline, current float64) float64 {
	return math.Abs(current-baseline) / math.Max(math.Abs(baseline), 1)
}
