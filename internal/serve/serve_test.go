package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/selection"
	"mpq/internal/store"
	"mpq/internal/workload"
)

func testTemplate(seed int64) Template {
	return Template{Workload: workload.Config{
		Tables: 4, Params: 1, Shape: workload.Chain, Seed: seed,
	}}
}

var testPoints = []geometry.Vector{{0.01}, {0.2}, {0.5}, {0.8}, {0.99}}

// render formats a choice so comparisons are byte-identical.
func render(c selection.Choice) string {
	return fmt.Sprintf("%v @ %v", c.Plan, c.Cost)
}

func renderAll(cs []selection.Choice) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = render(c)
	}
	return out
}

// sequentialPicks computes the expected responses with the in-process
// sequential path: optimize with one worker, round-trip through the
// store format, run the selection policies directly.
func sequentialPicks(t *testing.T, tpl Template) map[string][]string {
	t.Helper()
	schema, err := workload.Generate(tpl.Workload)
	if err != nil {
		t.Fatal(err)
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Context = ctx
	opts.Workers = 1
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Save(&buf, model.MetricNames(), model.Space(), res.Plans); err != nil {
		t.Fatal(err)
	}
	ps, err := store.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]selection.Candidate, len(ps.Plans))
	for i, lp := range ps.Plans {
		cands[i] = selection.Candidate{Plan: lp.Plan, Cost: lp.Cost, RR: lp.RR}
	}
	expected := make(map[string][]string)
	for _, x := range testPoints {
		expected[expectKey("frontier", x)] = renderAll(selection.Frontier(cands, x))
		w, err := selection.WeightedSum(cands, x, []float64{1, 10000})
		if err != nil {
			t.Fatal(err)
		}
		expected[expectKey("weighted", x)] = []string{render(w)}
		l, err := selection.Lexicographic(cands, x, []int{1, 0})
		if err != nil {
			t.Fatal(err)
		}
		expected[expectKey("lex", x)] = []string{render(l)}
	}
	return expected
}

func expectKey(policy string, x geometry.Vector) string {
	return fmt.Sprintf("%s@%v", policy, x)
}

// serverPicks issues the same requests against a server.
func serverPicks(t *testing.T, s *Server, key string, x geometry.Vector) map[string][]string {
	t.Helper()
	got := make(map[string][]string)
	reqs := []PickRequest{
		{Key: key, Point: x, Policy: PolicyFrontier},
		{Key: key, Point: x, Policy: PolicyWeightedSum, Weights: []float64{1, 10000}},
		{Key: key, Point: x, Policy: PolicyLexicographic, Order: []int{1, 0}},
	}
	names := []string{"frontier", "weighted", "lex"}
	for i, req := range reqs {
		res, err := pickRetrying(s, req)
		if err != nil {
			t.Fatalf("pick %s at %v: %v", names[i], x, err)
		}
		got[expectKey(names[i], x)] = renderAll(res.Choices)
	}
	return got
}

// pickRetrying retries on queue backpressure, as a client would.
func pickRetrying(s *Server, req PickRequest) (PickResult, error) {
	for {
		res, err := s.Pick(context.Background(), req)
		if errors.Is(err, ErrQueueFull) {
			continue
		}
		return res, err
	}
}

func prepareRetrying(s *Server, tpl Template) (PrepareResult, error) {
	for {
		res, err := s.Prepare(context.Background(), tpl)
		if errors.Is(err, ErrQueueFull) {
			continue
		}
		return res, err
	}
}

// TestServerMatchesSequentialPath: for fixed seeds, every cached Pick
// must return exactly (byte-identically) the plans and cost vectors the
// in-process sequential selection path returns.
func TestServerMatchesSequentialPath(t *testing.T) {
	s := New(Options{Workers: 4})
	defer s.Close()
	for _, seed := range []int64{21, 33} {
		tpl := testTemplate(seed)
		expected := sequentialPicks(t, tpl)
		prep, err := s.Prepare(context.Background(), tpl)
		if err != nil {
			t.Fatal(err)
		}
		if prep.Cached {
			t.Errorf("seed %d: first Prepare reported cached", seed)
		}
		if prep.NumPlans == 0 {
			t.Fatalf("seed %d: empty plan set", seed)
		}
		for _, x := range testPoints {
			got := serverPicks(t, s, prep.Key, x)
			for k, want := range got {
				exp := expected[k]
				if fmt.Sprint(exp) != fmt.Sprint(want) {
					t.Errorf("seed %d %s: server returned %v, sequential path %v", seed, k, want, exp)
				}
			}
		}
		// Second Prepare of the same template is a cache hit with the
		// same key.
		prep2, err := s.Prepare(context.Background(), tpl)
		if err != nil {
			t.Fatal(err)
		}
		if !prep2.Cached || prep2.Key != prep.Key {
			t.Errorf("seed %d: re-Prepare cached=%v key match=%v", seed, prep2.Cached, prep2.Key == prep.Key)
		}
	}
	st := s.Stats()
	if st.Prepares != 4 || st.PrepareHits != 2 || st.CachedPlanSets != 2 {
		t.Errorf("stats = %+v, want 4 prepares, 2 hits, 2 cached sets", st)
	}
	if st.Geometry.LPs == 0 {
		t.Error("no geometry work recorded")
	}
	// Every non-cached Prepare ran the dependency scheduler; its
	// pipeline metrics must be aggregated into the server stats.
	if st.PipelineBusy <= 0 || st.PipelineCapacity <= 0 {
		t.Errorf("pipeline times not recorded: busy=%v capacity=%v", st.PipelineBusy, st.PipelineCapacity)
	}
	if st.PipelineUtilization <= 0 || st.PipelineUtilization > 1 {
		t.Errorf("pipeline utilization %v out of (0,1]", st.PipelineUtilization)
	}
}

// TestServerPipelineUtilizationParallelPrepare: with intra-query
// parallelism enabled on Prepares, the utilization aggregate must still
// land in (0,1] and split jobs are surfaced when forced.
func TestServerPipelineUtilizationParallelPrepare(t *testing.T) {
	opts := Options{Workers: 2}
	opts.Optimizer = core.DefaultOptions()
	opts.Optimizer.Workers = 2
	opts.Optimizer.SplitCandidates = 1 // force intra-mask split jobs
	s := New(opts)
	defer s.Close()
	if _, err := s.Prepare(context.Background(), testTemplate(5)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PipelineUtilization <= 0 || st.PipelineUtilization > 1 {
		t.Errorf("pipeline utilization %v out of (0,1]", st.PipelineUtilization)
	}
	if st.SplitJobs == 0 {
		t.Error("forced split jobs not recorded in server stats")
	}
}

// TestServerConcurrentStress drives many concurrent Prepare/Pick mixes
// (run under -race in CI) and asserts every response is byte-identical
// to the sequential path's.
func TestServerConcurrentStress(t *testing.T) {
	seeds := []int64{21, 33, 47}
	templates := make([]Template, len(seeds))
	expected := make([]map[string][]string, len(seeds))
	for i, seed := range seeds {
		templates[i] = testTemplate(seed)
		expected[i] = sequentialPicks(t, templates[i])
	}

	s := New(Options{Workers: 4, QueueDepth: 8})
	defer s.Close()

	const clients = 8
	iterations := 6
	if testing.Short() {
		iterations = 2
	}
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				i := (c + it) % len(templates)
				prep, err := prepareRetrying(s, templates[i])
				if err != nil {
					errCh <- fmt.Errorf("client %d prepare %d: %w", c, i, err)
					return
				}
				x := testPoints[(c+it)%len(testPoints)]
				res, err := pickRetrying(s, PickRequest{Key: prep.Key, Point: x, Policy: PolicyFrontier})
				if err != nil {
					errCh <- fmt.Errorf("client %d pick: %w", c, err)
					return
				}
				want := expected[i][expectKey("frontier", x)]
				if fmt.Sprint(renderAll(res.Choices)) != fmt.Sprint(want) {
					errCh <- fmt.Errorf("client %d: frontier at %v = %v, sequential %v",
						c, x, renderAll(res.Choices), want)
					return
				}
				wres, err := pickRetrying(s, PickRequest{
					Key: prep.Key, Point: x, Policy: PolicyWeightedSum, Weights: []float64{1, 10000},
				})
				if err != nil {
					errCh <- fmt.Errorf("client %d weighted pick: %w", c, err)
					return
				}
				want = expected[i][expectKey("weighted", x)]
				if fmt.Sprint(renderAll(wres.Choices)) != fmt.Sprint(want) {
					errCh <- fmt.Errorf("client %d: weighted at %v = %v, sequential %v",
						c, x, renderAll(wres.Choices), want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := s.Stats()
	if st.CachedPlanSets != len(templates) {
		t.Errorf("cached sets = %d, want %d (singleflight per key)", st.CachedPlanSets, len(templates))
	}
	if st.PrepareHits == 0 {
		t.Error("no cache hits during the stress mix")
	}
	if got := st.Prepares; got != int64(clients*iterations) {
		t.Errorf("prepares = %d, want %d", got, clients*iterations)
	}
}

// TestServerIndexedPicksMatchSequentialPath: with the pick index
// enabled, every Pick and every PickBatch must still return exactly
// (byte-identically) what the in-process sequential linear scan
// returns, and the index must actually serve the picks (not the
// fallback).
func TestServerIndexedPicksMatchSequentialPath(t *testing.T) {
	s := New(Options{Workers: 2, Index: true})
	defer s.Close()
	for _, seed := range []int64{21, 33} {
		tpl := testTemplate(seed)
		expected := sequentialPicks(t, tpl)
		prep, err := s.Prepare(context.Background(), tpl)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range testPoints {
			got := serverPicks(t, s, prep.Key, x)
			for k, want := range got {
				if fmt.Sprint(expected[k]) != fmt.Sprint(want) {
					t.Errorf("seed %d %s: indexed server returned %v, sequential path %v", seed, k, want, expected[k])
				}
			}
		}
		// The same points as one batch, per policy.
		batchPolicies := []PickBatchRequest{
			{Key: prep.Key, Points: testPoints, Policy: PolicyFrontier},
			{Key: prep.Key, Points: testPoints, Policy: PolicyWeightedSum, Weights: []float64{1, 10000}},
			{Key: prep.Key, Points: testPoints, Policy: PolicyLexicographic, Order: []int{1, 0}},
		}
		names := []string{"frontier", "weighted", "lex"}
		for bi, breq := range batchPolicies {
			bres, err := s.PickBatch(context.Background(), breq)
			if err != nil {
				t.Fatalf("seed %d batch %s: %v", seed, names[bi], err)
			}
			if len(bres.Choices) != len(testPoints) {
				t.Fatalf("batch returned %d answers for %d points", len(bres.Choices), len(testPoints))
			}
			for pi, x := range testPoints {
				want := expected[expectKey(names[bi], x)]
				if fmt.Sprint(renderAll(bres.Choices[pi])) != fmt.Sprint(want) {
					t.Errorf("seed %d batch %s at %v: %v, sequential %v",
						seed, names[bi], x, renderAll(bres.Choices[pi]), want)
				}
			}
		}
	}
	st := s.Stats()
	if st.Index.IndexedPlanSets != 2 {
		t.Errorf("indexed plan sets = %d, want 2", st.Index.IndexedPlanSets)
	}
	if st.Index.Builds != 2 || st.Index.BuildTime <= 0 {
		t.Errorf("index builds = %d (time %v), want 2 builds with recorded time", st.Index.Builds, st.Index.BuildTime)
	}
	if st.Index.Leaves <= 0 || st.Index.AvgLeafCandidates <= 0 {
		t.Errorf("index shape not reported: %+v", st.Index)
	}
	if st.Index.IndexPicks == 0 {
		t.Error("no picks served through the index")
	}
	if st.Index.FallbackPicks != 0 {
		t.Errorf("%d in-space picks fell back to the linear scan", st.Index.FallbackPicks)
	}
}

// TestPickStatsAccounting is the pick-accounting regression test:
// Stats.Picks counts batch picks per *point* (not per request), and
// index-served versus fallback-served picks are distinguished.
func TestPickStatsAccounting(t *testing.T) {
	check := func(t *testing.T, s *Server, wantIndexed bool) {
		t.Helper()
		prep, err := s.Prepare(context.Background(), testTemplate(21))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Pick(context.Background(), PickRequest{Key: prep.Key, Point: testPoints[0]}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.PickBatch(context.Background(), PickBatchRequest{Key: prep.Key, Points: testPoints}); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		wantPicks := int64(1 + len(testPoints))
		if st.Picks != wantPicks {
			t.Errorf("Picks = %d, want %d (batch picks count per point)", st.Picks, wantPicks)
		}
		if st.Index.BatchRequests != 1 || st.Index.BatchPoints != int64(len(testPoints)) {
			t.Errorf("batch accounting = %d requests / %d points, want 1 / %d",
				st.Index.BatchRequests, st.Index.BatchPoints, len(testPoints))
		}
		if st.Index.IndexPicks+st.Index.FallbackPicks != wantPicks {
			t.Errorf("index+fallback = %d+%d, want %d total",
				st.Index.IndexPicks, st.Index.FallbackPicks, wantPicks)
		}
		if wantIndexed && st.Index.IndexPicks != wantPicks {
			t.Errorf("indexed server served %d of %d picks via the index", st.Index.IndexPicks, wantPicks)
		}
		if !wantIndexed && st.Index.IndexPicks != 0 {
			t.Errorf("index-less server reported %d index picks", st.Index.IndexPicks)
		}
	}
	t.Run("indexed", func(t *testing.T) {
		s := New(Options{Workers: 1, Index: true})
		defer s.Close()
		check(t, s, true)
	})
	t.Run("linear", func(t *testing.T) {
		s := New(Options{Workers: 1})
		defer s.Close()
		check(t, s, false)
	})
}

// TestPickBatchErrors: an invalid point fails the whole batch with an
// error naming the point.
func TestPickBatchErrors(t *testing.T) {
	s := New(Options{Workers: 1, Index: true})
	defer s.Close()
	if _, err := s.PickBatch(context.Background(), PickBatchRequest{Key: "missing"}); !errors.Is(err, ErrUnknownPlanSet) {
		t.Errorf("unknown key error = %v", err)
	}
	prep, err := s.Prepare(context.Background(), testTemplate(21))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.PickBatch(context.Background(), PickBatchRequest{
		Key:    prep.Key,
		Points: []geometry.Vector{{0.5}, {7}},
	})
	if err == nil || !strings.Contains(err.Error(), "point 1") {
		t.Errorf("out-of-space batch point error = %v", err)
	}
	_, err = s.PickBatch(context.Background(), PickBatchRequest{
		Key: prep.Key, Points: []geometry.Vector{{0.5}}, Policy: "nonsense",
	})
	if err == nil || strings.Contains(err.Error(), "point") {
		t.Errorf("unknown policy in batch = %v, want a request-level (not per-point) error", err)
	}
	// Policy validation happens up front, even for empty batches.
	if _, err := s.PickBatch(context.Background(), PickBatchRequest{Key: prep.Key, Policy: "nonsense"}); err == nil {
		t.Error("unknown policy accepted in empty batch")
	}
	if _, err := s.PickBatch(context.Background(), PickBatchRequest{Key: prep.Key}); err != nil {
		t.Errorf("empty batch with valid policy failed: %v", err)
	}
}

// TestIndexedPersistenceAcrossServers: a persisted indexed document is
// served by a restarted server without rebuilding the index, and an
// index-enabled server reindexes documents written without one.
func TestIndexedPersistenceAcrossServers(t *testing.T) {
	dir := t.TempDir()
	tpl := testTemplate(21)

	s1 := New(Options{Workers: 1, Dir: dir, Index: true})
	prep1, err := s1.Prepare(context.Background(), tpl)
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.Index.Builds != 1 {
		t.Errorf("first server builds = %d, want 1", st.Index.Builds)
	}
	res1, err := s1.Pick(context.Background(), PickRequest{Key: prep1.Key, Point: geometry.Vector{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// Restart with the persisted stanza: no rebuild, identical picks,
	// index-served.
	s2 := New(Options{Workers: 1, Dir: dir, Index: true})
	prep2, err := s2.Prepare(context.Background(), tpl)
	if err != nil {
		t.Fatal(err)
	}
	if !prep2.Cached {
		t.Error("restart Prepare did not hit the persisted document")
	}
	if st := s2.Stats(); st.Index.Builds != 0 {
		t.Errorf("restarted server rebuilt the index %d times despite the persisted stanza", st.Index.Builds)
	}
	res2, err := s2.Pick(context.Background(), PickRequest{Key: prep2.Key, Point: geometry.Vector{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(renderAll(res1.Choices)) != fmt.Sprint(renderAll(res2.Choices)) {
		t.Errorf("picks differ across restart: %v vs %v", renderAll(res1.Choices), renderAll(res2.Choices))
	}
	if st := s2.Stats(); st.Index.IndexPicks != 1 {
		t.Errorf("restarted server index picks = %d, want 1", st.Index.IndexPicks)
	}
	s2.Close()

	// A document written WITHOUT an index is reindexed on load by an
	// index-enabled server.
	dir2 := t.TempDir()
	plain := New(Options{Workers: 1, Dir: dir2})
	if _, err := plain.Prepare(context.Background(), tpl); err != nil {
		t.Fatal(err)
	}
	plain.Close()
	s3 := New(Options{Workers: 1, Dir: dir2, Index: true})
	defer s3.Close()
	prep3, err := s3.Prepare(context.Background(), tpl)
	if err != nil {
		t.Fatal(err)
	}
	if !prep3.Cached {
		t.Error("index-enabled server did not reuse the index-less document")
	}
	if st := s3.Stats(); st.Index.Builds != 1 {
		t.Errorf("rebuild-on-load builds = %d, want 1", st.Index.Builds)
	}
	res3, err := s3.Pick(context.Background(), PickRequest{Key: prep3.Key, Point: geometry.Vector{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(renderAll(res1.Choices)) != fmt.Sprint(renderAll(res3.Choices)) {
		t.Errorf("reindexed picks differ: %v vs %v", renderAll(res1.Choices), renderAll(res3.Choices))
	}
}

// TestQueueBackpressure: with a single worker wedged and the queue at
// capacity, further submissions fail fast with ErrQueueFull and are
// counted as rejected.
func TestQueueBackpressure(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	blocker := &job{done: make(chan struct{}), run: func(w *worker) {
		close(started)
		<-release
	}}
	if err := s.submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started // the only worker is now wedged

	queued := &job{done: make(chan struct{}), run: func(w *worker) {}}
	if err := s.submit(queued); err != nil {
		t.Fatalf("queueing up to depth should succeed: %v", err)
	}
	if err := s.submit(&job{done: make(chan struct{})}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit beyond depth = %v, want ErrQueueFull", err)
	}
	// The public API surfaces the same backpressure.
	if _, err := s.Pick(context.Background(), PickRequest{Key: "nope"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Pick under full queue = %v, want ErrQueueFull", err)
	}
	close(release)
	<-queued.done
	if st := s.Stats(); st.Rejected < 2 {
		t.Errorf("rejected = %d, want >= 2", st.Rejected)
	}
}

func TestPickErrors(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	if _, err := s.Pick(context.Background(), PickRequest{Key: "missing", Point: geometry.Vector{0.5}}); !errors.Is(err, ErrUnknownPlanSet) {
		t.Errorf("unknown key error = %v", err)
	}
	prep, err := s.Prepare(context.Background(), testTemplate(21))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pick(context.Background(), PickRequest{Key: prep.Key, Point: geometry.Vector{0.5, 0.5}}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// A point outside the parameter space must be rejected, not priced
	// by extrapolating the stored cost pieces.
	if _, err := s.Pick(context.Background(), PickRequest{Key: prep.Key, Point: geometry.Vector{5}}); err == nil ||
		!strings.Contains(err.Error(), "outside") {
		t.Errorf("out-of-space point error = %v", err)
	}
	if _, err := s.Pick(context.Background(), PickRequest{Key: prep.Key, Point: geometry.Vector{0.5}, Policy: "nonsense"}); err == nil {
		t.Error("unknown policy accepted")
	}
	// Weighted sum with invalid weights surfaces the selection error.
	if _, err := s.Pick(context.Background(), PickRequest{
		Key: prep.Key, Point: geometry.Vector{0.5}, Policy: PolicyWeightedSum, Weights: []float64{0, 0},
	}); err == nil {
		t.Error("zero weights accepted")
	}
}

func TestServerClosed(t *testing.T) {
	s := New(Options{Workers: 1})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Prepare(context.Background(), testTemplate(21)); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Prepare after Close = %v, want ErrServerClosed", err)
	}
	if _, err := s.Pick(context.Background(), PickRequest{Key: "k"}); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Pick after Close = %v, want ErrServerClosed", err)
	}
}

// TestPersistenceAcrossServers: with Options.Dir, a second server
// instance serves the first one's prepared template from the persisted
// document — without optimizing — and picks identically.
func TestPersistenceAcrossServers(t *testing.T) {
	dir := t.TempDir()
	tpl := testTemplate(21)

	s1 := New(Options{Workers: 2, Dir: dir})
	prep1, err := s1.Prepare(context.Background(), tpl)
	if err != nil {
		t.Fatal(err)
	}
	x := geometry.Vector{0.5}
	res1, err := s1.Pick(context.Background(), PickRequest{Key: prep1.Key, Point: x, Policy: PolicyFrontier})
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	if _, err := os.Stat(filepath.Join(dir, prep1.Key+".json")); err != nil {
		t.Fatalf("persisted document missing: %v", err)
	}

	s2 := New(Options{Workers: 2, Dir: dir})
	defer s2.Close()
	prep2, err := s2.Prepare(context.Background(), tpl)
	if err != nil {
		t.Fatal(err)
	}
	if !prep2.Cached || prep2.Key != prep1.Key {
		t.Errorf("restart Prepare: cached=%v, key match=%v", prep2.Cached, prep2.Key == prep1.Key)
	}
	if st := s2.Stats(); st.PrepareDiskHits != 1 {
		t.Errorf("disk hits = %d, want 1", st.PrepareDiskHits)
	}
	res2, err := s2.Pick(context.Background(), PickRequest{Key: prep2.Key, Point: x, Policy: PolicyFrontier})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(renderAll(res1.Choices)) != fmt.Sprint(renderAll(res2.Choices)) {
		t.Errorf("picks differ across restart: %v vs %v", renderAll(res1.Choices), renderAll(res2.Choices))
	}
}

// TestKeySensitivity: the cache key must separate templates that
// produce different plan sets and must not depend on the pool size.
func TestKeySensitivity(t *testing.T) {
	a := New(Options{Workers: 1})
	defer a.Close()
	b := New(Options{Workers: 3})
	defer b.Close()
	keyA, err := a.Key(testTemplate(21))
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := b.Key(testTemplate(21))
	if err != nil {
		t.Fatal(err)
	}
	if keyA != keyB {
		t.Error("key depends on the pool size")
	}
	keyOther, err := a.Key(testTemplate(22))
	if err != nil {
		t.Fatal(err)
	}
	if keyOther == keyA {
		t.Error("different workloads share a key")
	}
	cfg := cloud.DefaultConfig()
	cfg.PricePerNodeSec *= 2
	tpl := testTemplate(21)
	tpl.Cloud = &cfg
	keyCloud, err := a.Key(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if keyCloud == keyA {
		t.Error("different cost-model configs share a key")
	}
	c := New(Options{Workers: 1, Optimizer: func() core.Options {
		o := core.DefaultOptions()
		o.Region.RelevancePoints = 0
		return o
	}()})
	defer c.Close()
	keyOpts, err := c.Key(testTemplate(21))
	if err != nil {
		t.Fatal(err)
	}
	if keyOpts == keyA {
		t.Error("different optimizer configs share a key")
	}
	// Geometry tolerances steer pruning, so they are part of the key —
	// but a zero config and the explicit defaults are the same key.
	d := New(Options{Workers: 1, Solver: geometry.Config{RadiusTol: 1e-3}})
	defer d.Close()
	keySolver, err := d.Key(testTemplate(21))
	if err != nil {
		t.Fatal(err)
	}
	if keySolver == keyA {
		t.Error("different solver tolerances share a key")
	}
	e := New(Options{Workers: 1, Solver: geometry.DefaultConfig()})
	defer e.Close()
	keyDefault, err := e.Key(testTemplate(21))
	if err != nil {
		t.Fatal(err)
	}
	if keyDefault != keyA {
		t.Error("zero solver config and explicit defaults produce different keys")
	}
}

// TestPrepareInternalFailure: server-side persistence failures are
// wrapped in ErrInternal (transports map them to 5xx, not 4xx).
func TestPrepareInternalFailure(t *testing.T) {
	s := New(Options{Workers: 1, Dir: filepath.Join(t.TempDir(), "does", "not", "exist")})
	defer s.Close()
	if _, err := s.Prepare(context.Background(), testTemplate(21)); !errors.Is(err, ErrInternal) {
		t.Errorf("Prepare into a missing dir = %v, want ErrInternal", err)
	}
}
