package serve

import (
	"mpq/internal/fleet"
	"mpq/internal/obs"
)

// Metrics adapter: RegisterMetrics maps every field of Stats onto a
// typed metric of an obs.Registry, refreshed from one Stats snapshot
// per scrape through a collect hook — the server's request paths never
// know the registry exists. The mapping is a table (statMetrics) so a
// reflection test can prove it covers every Stats leaf field; adding a
// Stats field without a metric fails that test, which keeps /metrics
// and /stats answers reconcilable forever.
//
// Kind discipline: a Stats field that can decrease — gauges over the
// resident cache, admission occupancy, the index aggregates recomputed
// from resident entries, the utilization ratio — must map to a gauge;
// everything monotonic maps to a counter, which the CI exposition lint
// verifies across scrapes.

// statMetric is one Stats field's metric binding.
type statMetric struct {
	field string // dotted Stats field path, e.g. "Cache.Hits"
	name  string
	help  string
	kind  obs.Kind
	get   func(*Stats) float64
}

// secs converts a nanosecond time.Duration-backed field to seconds.
func secs(ns int64) float64 { return float64(ns) / 1e9 }

// statMetrics binds every Stats leaf field (statsFieldCoverage in
// obs_test.go enforces the "every") to a metric name, kind, and getter.
var statMetrics = []statMetric{
	{"Prepares", "mpq_prepares_total", "Completed Prepare requests.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Prepares) }},
	{"PrepareHits", "mpq_prepare_hits_total", "Prepares served from the in-memory cache or a deduplicated flight.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.PrepareHits) }},
	{"PrepareDiskHits", "mpq_prepare_disk_hits_total", "Documents loaded from the persistence directory.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.PrepareDiskHits) }},
	{"Picks", "mpq_picks_total", "Completed pick points (one per Pick, one per PickBatch point).", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Picks) }},
	{"Rejected", "mpq_rejected_total", "Requests refused with a full queue (backpressure).", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Rejected) }},

	{"Index.IndexedPlanSets", "mpq_index_plan_sets", "Resident cached plan sets carrying a built pick index.", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Index.IndexedPlanSets) }},
	{"Index.Leaves", "mpq_index_leaves", "Leaf cells across resident pick indexes.", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Index.Leaves) }},
	{"Index.LeafCandidates", "mpq_index_leaf_candidates", "Per-leaf candidate ids across resident pick indexes.", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Index.LeafCandidates) }},
	{"Index.AvgLeafCandidates", "mpq_index_avg_leaf_candidates", "Mean candidates a cell lookup scans (resident indexes).", obs.KindGauge,
		func(st *Stats) float64 { return st.Index.AvgLeafCandidates }},
	{"Index.Builds", "mpq_index_builds_total", "Pick-index builds performed by this server.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Index.Builds) }},
	{"Index.BuildTime", "mpq_index_build_seconds_total", "Wall-clock seconds spent building pick indexes.", obs.KindCounter,
		func(st *Stats) float64 { return secs(int64(st.Index.BuildTime)) }},
	{"Index.IndexPicks", "mpq_index_picks_total", "Pick points answered through an index cell lookup.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Index.IndexPicks) }},
	{"Index.FallbackPicks", "mpq_index_fallback_picks_total", "Pick points answered by the full linear candidate scan.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Index.FallbackPicks) }},
	{"Index.BatchRequests", "mpq_pick_batch_requests_total", "PickBatch requests.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Index.BatchRequests) }},
	{"Index.BatchPoints", "mpq_pick_batch_points_total", "Points carried by PickBatch requests.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Index.BatchPoints) }},

	{"CachedPlanSets", "mpq_cached_plan_sets", "Plan sets resident in the in-memory cache.", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.CachedPlanSets) }},
	{"Cache.ResidentEntries", "mpq_cache_resident_entries", "Entries resident in the memory-accounted cache.", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Cache.ResidentEntries) }},
	{"Cache.ResidentBytes", "mpq_cache_resident_bytes", "Accounted bytes resident in the cache.", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Cache.ResidentBytes) }},
	{"Cache.Admissions", "mpq_cache_admissions_total", "Entries accepted into the cache.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Cache.Admissions) }},
	{"Cache.AdmittedBytes", "mpq_cache_admitted_bytes_total", "Accounted bytes of all cache admissions.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Cache.AdmittedBytes) }},
	{"Cache.Evictions", "mpq_cache_evictions_total", "Entries evicted to respect the cache budget.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Cache.Evictions) }},
	{"Cache.EvictedBytes", "mpq_cache_evicted_bytes_total", "Accounted bytes of all cache evictions.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Cache.EvictedBytes) }},
	{"Cache.Readmissions", "mpq_cache_readmissions_total", "Cache admissions whose key had been admitted (and evicted) before.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Cache.Readmissions) }},
	{"Cache.Hits", "mpq_cache_hits_total", "Cache Get hits.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Cache.Hits) }},
	{"Cache.Misses", "mpq_cache_misses_total", "Cache Get misses.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Cache.Misses) }},
	{"Cache.Replaced", "mpq_cache_replaced_total", "Cache entries whose value was swapped in place (generation refinement).", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Cache.Replaced) }},
	{"Cache.Pinned", "mpq_cache_pinned", "Cache entries currently pinned by in-flight requests.", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Cache.Pinned) }},
	{"Cache.CapBytes", "mpq_cache_cap_bytes", "Configured cache budget in bytes (0 = unbounded).", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Cache.CapBytes) }},

	{"SharedHits", "mpq_shared_hits_total", "Documents served from the shared store.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.SharedHits) }},
	{"PeerHits", "mpq_peer_hits_total", "Documents fetched from peers.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.PeerHits) }},
	{"SharedPuts", "mpq_shared_puts_total", "Documents this server published to the shared store.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.SharedPuts) }},
	{"Reloads", "mpq_reloads_total", "Evicted plan sets transparently reloaded at pick time.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Reloads) }},
	{"Cancellations", "mpq_cancellations_total", "Requests that ended with context.Canceled.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Cancellations) }},
	{"DeadlineExpiries", "mpq_deadline_expiries_total", "Requests that ended with context.DeadlineExceeded.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.DeadlineExpiries) }},
	{"PeerRetries", "mpq_peer_retries_total", "Re-attempts of failed peer requests.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.PeerRetries) }},
	{"PeerBreakerTrips", "mpq_peer_breaker_trips_total", "Peer circuit-breaker closed-to-open transitions.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.PeerBreakerTrips) }},
	{"QuarantinedBlobs", "mpq_quarantined_blobs_total", "Corrupt blobs quarantined by the shared store.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.QuarantinedBlobs) }},

	// Admitted decrements when an acquisition is cancelled while queued
	// (fleet.Admission), so it is a gauge despite the counter-ish name.
	{"Admission.Admitted", "mpq_admission_admitted", "Prepare admissions that got a slot (net of cancelled-while-queued).", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Admission.Admitted) }},
	{"Admission.Waited", "mpq_admission_waited_total", "Prepare admissions that had to queue.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Admission.Waited) }},
	{"Admission.Cancelled", "mpq_admission_cancelled_total", "Prepare admissions cancelled while queued.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Admission.Cancelled) }},
	{"Admission.WaitTime", "mpq_admission_wait_seconds_total", "Seconds Prepare admissions spent queued.", obs.KindCounter,
		func(st *Stats) float64 { return secs(int64(st.Admission.WaitTime)) }},
	{"Admission.Running", "mpq_admission_running", "Prepares currently holding an admission slot.", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Admission.Running) }},
	{"Admission.Queued", "mpq_admission_queued", "Prepares currently queued for admission.", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Admission.Queued) }},
	{"Admission.MaxQueued", "mpq_admission_max_queued", "High-water mark of the admission wait queue.", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Admission.MaxQueued) }},
	{"Admission.Cap", "mpq_admission_cap", "Configured admission concurrency cap (0 = unlimited).", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Admission.Cap) }},

	{"DonatedTasks", "mpq_donated_tasks_total", "Idle-worker stints donated to in-flight Prepares' split jobs.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.DonatedTasks) }},
	{"DonatedMasks", "mpq_donated_masks_total", "Whole ready masks planned by donated worker stints.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.DonatedMasks) }},

	{"Refine.Scheduled", "mpq_refine_scheduled_total", "Ladder steps enqueued for background refinement.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Refine.Scheduled) }},
	{"Refine.Completed", "mpq_refine_completed_total", "Refinement jobs whose generation was computed or fetched and swapped in.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Refine.Completed) }},
	{"Refine.Cancelled", "mpq_refine_cancelled_total", "Refinement jobs aborted by shutdown, cancellation, or a failed chain predecessor.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Refine.Cancelled) }},
	{"Refine.Failed", "mpq_refine_failed_total", "Refinement jobs whose computation failed.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Refine.Failed) }},
	{"Refine.Skipped", "mpq_refine_skipped_total", "Refinement jobs obsoleted by an already-finer resident generation.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Refine.Skipped) }},
	{"Refine.Pending", "mpq_refine_pending", "Refinement jobs currently queued.", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Refine.Pending) }},
	{"Refine.Running", "mpq_refine_running", "Whether a refinement job is currently executing (0 or 1).", obs.KindGauge,
		func(st *Stats) float64 { return float64(st.Refine.Running) }},
	{"Refine.CoarsePrepares", "mpq_refine_coarse_prepares_total", "Deadline-bounded Prepares answered with a freshly computed coarse generation.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Refine.CoarsePrepares) }},
	{"Refine.Swaps", "mpq_refine_swaps_total", "Refined generations atomically swapped into the serve cache.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Refine.Swaps) }},
	{"Refine.CoarsePicks", "mpq_refine_coarse_picks_total", "Pick points served from a non-final generation.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Refine.CoarsePicks) }},

	{"Geometry.LPs", "mpq_geometry_lps_total", "Linear programs solved by the pool's solvers.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Geometry.LPs) }},
	{"Geometry.LPIterations", "mpq_geometry_lp_iterations_total", "Simplex pivots across all LPs.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Geometry.LPIterations) }},
	{"Geometry.FastPathLPs", "mpq_geometry_fast_path_lps_total", "LPs resolved without running the simplex.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Geometry.FastPathLPs) }},
	{"Geometry.RegionDiffs", "mpq_geometry_region_diffs_total", "Region-difference computations.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Geometry.RegionDiffs) }},
	{"Geometry.ConvexityChecks", "mpq_geometry_convexity_checks_total", "Union-convexity recognitions.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.Geometry.ConvexityChecks) }},

	{"PipelineBusy", "mpq_pipeline_busy_seconds_total", "Per-worker busy seconds inside the optimizer's dependency scheduler.", obs.KindCounter,
		func(st *Stats) float64 { return secs(int64(st.PipelineBusy)) }},
	{"PipelineCapacity", "mpq_pipeline_capacity_seconds_total", "Scheduler wall-clock seconds times the worker count, summed over optimizations.", obs.KindCounter,
		func(st *Stats) float64 { return secs(int64(st.PipelineCapacity)) }},
	{"PipelineUtilization", "mpq_pipeline_utilization", "Mean worker utilization of the optimizer's dependency scheduler (0..1).", obs.KindGauge,
		func(st *Stats) float64 { return st.PipelineUtilization }},
	{"SplitJobs", "mpq_split_jobs_total", "Table sets planned with intra-mask split parallelism.", obs.KindCounter,
		func(st *Stats) float64 { return float64(st.SplitJobs) }},
}

// RegisterMetrics exposes the server's counters on reg in Prometheus
// form: every Stats field, plus (when configured) the telemetry
// recorder's counters. Each scrape takes one Stats snapshot — the same
// one GET /stats serves — so the two surfaces can never drift.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	type binding struct {
		set func(float64)
		get func(*Stats) float64
	}
	bindings := make([]binding, 0, len(statMetrics))
	for _, m := range statMetrics {
		switch m.kind {
		case obs.KindCounter:
			c := reg.Counter(m.name, m.help)
			bindings = append(bindings, binding{c.SetTotal, m.get})
		default:
			g := reg.Gauge(m.name, m.help)
			bindings = append(bindings, binding{g.Set, m.get})
		}
	}
	var tel struct {
		templates, offered, recorded, outOfRange *obs.Gauge
		flushes, flushErrors, loadErrors         *obs.Counter
	}
	if s.opts.Telemetry != nil {
		tel.templates = reg.Gauge("mpq_telemetry_templates", "Per-template pick-point histograms resident.")
		tel.offered = reg.Gauge("mpq_telemetry_offered", "Pick points offered to the telemetry recorder.")
		tel.recorded = reg.Gauge("mpq_telemetry_recorded", "Pick points binned by the telemetry recorder (sampled subset of offered).")
		tel.outOfRange = reg.Gauge("mpq_telemetry_out_of_range", "Recorded pick points outside their histogram's box (clamped).")
		tel.flushes = reg.Counter("mpq_telemetry_flushes_total", "Telemetry histogram files written.")
		tel.flushErrors = reg.Counter("mpq_telemetry_flush_errors_total", "Telemetry flushes that failed.")
		tel.loadErrors = reg.Counter("mpq_telemetry_load_errors_total", "Persisted telemetry files discarded at boot (torn or foreign).")
	}
	var peer struct {
		fetches, fetchHits, errors, skips, corrupt *obs.Counter
	}
	if s.opts.Peers != nil {
		peer.fetches = reg.Counter("mpq_peer_fetches_total", "Peer fetch attempts (fleet.PeerClient).")
		peer.fetchHits = reg.Counter("mpq_peer_fetch_hits_total", "Peer fetches answered by some peer.")
		peer.errors = reg.Counter("mpq_peer_errors_total", "Per-peer request failures after retries.")
		peer.skips = reg.Counter("mpq_peer_breaker_skips_total", "Peer requests not sent because a breaker was open.")
		peer.corrupt = reg.Counter("mpq_peer_corrupt_total", "Peer responses rejected by integrity validation.")
	}
	reg.OnCollect(func() {
		st := s.Stats()
		for _, b := range bindings {
			b.set(b.get(&st))
		}
		if s.opts.Telemetry != nil {
			ts := s.opts.Telemetry.Stats()
			tel.templates.Set(float64(ts.Templates))
			tel.offered.Set(float64(ts.Offered))
			tel.recorded.Set(float64(ts.Recorded))
			tel.outOfRange.Set(float64(ts.OutOfRange))
			tel.flushes.SetTotal(float64(ts.Flushes))
			tel.flushErrors.SetTotal(float64(ts.FlushErrors))
			tel.loadErrors.SetTotal(float64(ts.LoadErrors))
		}
		if s.opts.Peers != nil {
			ps := s.opts.Peers.Stats()
			peer.fetches.SetTotal(float64(ps.Fetches))
			peer.fetchHits.SetTotal(float64(ps.Hits))
			peer.errors.SetTotal(float64(ps.Errors))
			peer.skips.SetTotal(float64(ps.BreakerSkips))
			peer.corrupt.SetTotal(float64(ps.Corrupt))
			// Per-peer breaker children register idempotently per URL, so
			// the hook may re-register them every scrape.
			for _, pi := range ps.Peers {
				l := obs.Label{Name: "peer", Value: pi.URL}
				reg.Gauge("mpq_peer_breaker_state",
					"Circuit-breaker state per peer (0 closed, 1 half-open, 2 open).", l).
					Set(breakerStateValue(pi.State))
				reg.Gauge("mpq_peer_consecutive_failures",
					"Consecutive failures since the peer's last success.", l).
					Set(float64(pi.Failures))
			}
		}
	})
}

// breakerStateValue encodes a breaker state as a gauge level: the
// healthy state is 0 so dashboards can alert on anything non-zero.
func breakerStateValue(st fleet.PeerState) float64 {
	switch st {
	case fleet.PeerHalfOpen:
		return 1
	case fleet.PeerOpen:
		return 2
	}
	return 0
}
