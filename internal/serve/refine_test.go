package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/selection"
	"mpq/internal/store"
	"mpq/internal/workload"
)

// poolWorkers returns the server pool width for the refinement tests:
// the CI determinism matrix (MPQ_TEST_WORKERS, 0 = the server default)
// when set, else 2.
func poolWorkers(t *testing.T) int {
	env := os.Getenv("MPQ_TEST_WORKERS")
	if env == "" {
		return 2
	}
	n, err := strconv.Atoi(env)
	if err != nil {
		t.Fatalf("MPQ_TEST_WORKERS=%q: %v", env, err)
	}
	return n
}

// anytimeShapes are the workload shapes the anytime acceptance runs
// across: the deadline-budgeted coarse-first contract must hold
// regardless of join-graph structure and parameter dimension. Seeds
// are chosen so every ladder step's certified regret stays within its
// (1+ε) bound — the multiplicative certificate is numerically fragile
// on workloads whose exact frontier has a metric running near zero
// (absolute slack far below any real cost still yields a large
// ratio), the same reason the bench ε gate certifies per measured
// case rather than claiming the bound universally.
var anytimeShapes = []workload.Config{
	{Tables: 4, Params: 1, Shape: workload.Chain, Seed: 57},
	{Tables: 4, Params: 2, Shape: workload.Star, Seed: 7},
	{Tables: 5, Params: 1, Shape: workload.Chain, Seed: 33},
	{Tables: 4, Params: 2, Shape: workload.Cycle, Seed: 11},
}

// diagPoints spans the parameter space with the same coordinates the
// 1-dim testPoints use, plus two off-diagonal corners when the space
// has more than one dimension.
func diagPoints(params int) []geometry.Vector {
	vals := []float64{0.01, 0.2, 0.5, 0.8, 0.99}
	pts := make([]geometry.Vector, 0, len(vals)+2)
	for _, v := range vals {
		x := make(geometry.Vector, params)
		for d := range x {
			x[d] = v
		}
		pts = append(pts, x)
	}
	if params > 1 {
		lo, hi := make(geometry.Vector, params), make(geometry.Vector, params)
		for d := range lo {
			lo[d], hi[d] = 0.1, 0.9
			if d%2 == 1 {
				lo[d], hi[d] = 0.9, 0.1
			}
		}
		pts = append(pts, lo, hi)
	}
	return pts
}

// sequentialTier prepares one precision tier of a template with the
// in-process sequential path — one worker, the store round trip a
// server performs — and returns the candidates a server of this tier
// must serve byte-identically.
func sequentialTier(t *testing.T, tpl Template, epsilon float64) []selection.Candidate {
	t.Helper()
	schema, err := workload.Generate(tpl.Workload)
	if err != nil {
		t.Fatal(err)
	}
	gctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), gctx)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Context = gctx
	opts.Workers = 1
	opts.Epsilon = epsilon
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.SaveIndexedEpsilon(&buf, model.MetricNames(), model.Space(), res.Plans, nil, epsilon); err != nil {
		t.Fatal(err)
	}
	ps, err := store.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]selection.Candidate, len(ps.Plans))
	for i, lp := range ps.Plans {
		cands[i] = selection.Candidate{Plan: lp.Plan, Cost: lp.Cost, RR: lp.RR}
	}
	return cands
}

// frontierRefs renders a tier's frontier answer at every point, for
// byte-identical comparison against served picks.
func frontierRefs(cands []selection.Candidate, points []geometry.Vector) map[string]string {
	refs := make(map[string]string, len(points))
	for _, x := range points {
		refs[fmt.Sprint(x)] = fmt.Sprint(renderAll(selection.Frontier(cands, x)))
	}
	return refs
}

// worstRegret certifies a generation against the exact frontier the
// way the bench ε experiment does: at every point, every exact-frontier
// choice must be answered by some approx-frontier choice within a
// bounded per-metric cost ratio; the worst such ratio is returned.
func worstRegret(t *testing.T, exact, approx []selection.Candidate, points []geometry.Vector) float64 {
	t.Helper()
	worst := 1.0
	for _, x := range points {
		ref := selection.Frontier(exact, x)
		if len(ref) == 0 {
			continue // no exact answer here, nothing to certify against
		}
		got := selection.Frontier(approx, x)
		if len(got) == 0 {
			t.Fatalf("coarse frontier empty at %v", x)
		}
		for _, rc := range ref {
			best := 0.0
			for i, gc := range got {
				r := regretRatio(gc.Cost, rc.Cost)
				if i == 0 || r < best {
					best = r
				}
			}
			if best > worst {
				worst = best
			}
		}
	}
	return worst
}

// regretRatio is the largest per-metric cost ratio of a candidate
// answer over a reference answer, with near-zero references guarded.
func regretRatio(cand, ref geometry.Vector) float64 {
	const tiny = 1e-12
	worst := 0.0
	for m := range ref {
		var r float64
		switch {
		case ref[m] > tiny:
			r = cand[m] / ref[m]
		case cand[m] > tiny:
			r = 1e18
		default:
			r = 1
		}
		if r > worst {
			worst = r
		}
	}
	return worst
}

// memShared is an in-memory SharedStore.
type memShared struct {
	mu   sync.Mutex
	docs map[string][]byte
}

func newMemShared() *memShared { return &memShared{docs: make(map[string][]byte)} }

func (m *memShared) Get(key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	doc, ok := m.docs[key]
	return doc, ok, nil
}

func (m *memShared) Put(key string, doc []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.docs[key] = append([]byte(nil), doc...)
	return nil
}

func (m *memShared) Flush() error { return nil }

// gatedShared blocks every Get after the first on a gate. The anytime
// Prepare of a cold template issues exactly one shared-store Get (its
// source lookup); the next Get is the first background refinement
// job's — so the gate deterministically holds the coarse generation
// resident while a test inspects it, without sleeping or polling.
type gatedShared struct {
	inner *memShared
	calls atomic.Int64
	gate  chan struct{}
}

func (g *gatedShared) Get(key string) ([]byte, bool, error) {
	if g.calls.Add(1) > 1 {
		<-g.gate
	}
	return g.inner.Get(key)
}

func (g *gatedShared) Put(key string, doc []byte) error { return g.inner.Put(key, doc) }
func (g *gatedShared) Flush() error                     { return g.inner.Flush() }

// batchRetrying retries on queue backpressure, as a client would.
func batchRetrying(s *Server, req PickBatchRequest) (PickBatchResult, error) {
	for {
		res, err := s.PickBatch(context.Background(), req)
		if errors.Is(err, ErrQueueFull) {
			continue
		}
		return res, err
	}
}

// TestAnytimePrepareServesCoarseThenRefines is the anytime acceptance,
// table-driven across four workload shapes: a cold Prepare under a
// deadline returns the coarse generation — regret-certified against
// the exact frontier and byte-identical to the sequential ε=0.5 tier —
// and after background refinement settles, the same key serves the
// final generation byte-identically to the sequential exact path.
func TestAnytimePrepareServesCoarseThenRefines(t *testing.T) {
	const coarseEps = 0.5
	for _, cfg := range anytimeShapes {
		t.Run(fmt.Sprintf("%s-%dt-%dp", cfg.Shape, cfg.Tables, cfg.Params), func(t *testing.T) {
			tpl := Template{Workload: cfg}
			points := diagPoints(cfg.Params)
			ladder := []float64{coarseEps, 0.1}
			exact := sequentialTier(t, tpl, 0)
			coarse := sequentialTier(t, tpl, coarseEps)

			// Every ladder step honors its (1+ε_step) regret bound — the
			// per-step certificate the CI anytime bench gate enforces.
			for _, eps := range ladder {
				bound := (1 + eps) * (1 + 1e-9)
				tier := coarse
				if eps != coarseEps {
					tier = sequentialTier(t, tpl, eps)
				}
				if reg := worstRegret(t, exact, tier, points); reg > bound {
					t.Fatalf("ε=%g tier regret %v exceeds the (1+ε) bound %v", eps, reg, bound)
				}
			}

			gate := make(chan struct{})
			var open sync.Once
			release := func() { open.Do(func() { close(gate) }) }
			defer release()
			s := New(Options{
				Workers:       poolWorkers(t),
				RefineLadder:  ladder,
				DonateWorkers: true,
				Shared:        &gatedShared{inner: newMemShared(), gate: gate},
			})
			defer s.Close()

			deadline := 2 * time.Minute
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			start := time.Now()
			res, err := s.Prepare(ctx, tpl)
			elapsed := time.Since(start)
			cancel()
			if err != nil {
				t.Fatal(err)
			}
			if res.Cached || res.Final || res.Epsilon != coarseEps || res.Generation != 0 {
				t.Fatalf("cold deadline Prepare = eps %g gen %d final %v cached %v, want the coarse ε=%g generation",
					res.Epsilon, res.Generation, res.Final, res.Cached, coarseEps)
			}
			if elapsed >= deadline {
				t.Errorf("coarse Prepare took %v, deadline was %v", elapsed, deadline)
			}
			if res.NumPlans != len(coarse) {
				t.Errorf("coarse generation holds %d plans, sequential ε=%g tier %d", res.NumPlans, coarseEps, len(coarse))
			}
			if st := s.Stats(); st.Refine.CoarsePrepares != 1 {
				t.Errorf("CoarsePrepares = %d, want 1", st.Refine.CoarsePrepares)
			}

			// With refinement gated, picks serve the coarse generation —
			// byte-identical to the sequential ε=0.5 tier.
			coarseRefs := frontierRefs(coarse, points)
			for _, x := range points {
				pr, err := pickRetrying(s, PickRequest{Key: res.Key, Point: x})
				if err != nil {
					t.Fatal(err)
				}
				if pr.Final || pr.Epsilon != coarseEps || pr.Generation != 0 {
					t.Fatalf("coarse pick = eps %g gen %d final %v", pr.Epsilon, pr.Generation, pr.Final)
				}
				if got := fmt.Sprint(renderAll(pr.Choices)); got != coarseRefs[fmt.Sprint(x)] {
					t.Errorf("coarse pick at %v diverged from the sequential ε=%g tier:\n got %s\nwant %s",
						x, coarseEps, got, coarseRefs[fmt.Sprint(x)])
				}
			}
			if st := s.Stats(); st.Refine.CoarsePicks < int64(len(points)) {
				t.Errorf("CoarsePicks = %d, want at least %d", st.Refine.CoarsePicks, len(points))
			}

			release()
			wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer wcancel()
			if err := s.WaitRefinement(wctx); err != nil {
				t.Fatal(err)
			}

			// The key now serves the final generation: a repeat Prepare is
			// a cached hit on it, and picks are byte-identical to the
			// sequential exact path.
			again, err := prepareRetrying(s, tpl)
			if err != nil {
				t.Fatal(err)
			}
			if !again.Cached || !again.Final || again.Epsilon != 0 || again.Generation != 2 {
				t.Fatalf("post-refinement Prepare = eps %g gen %d final %v cached %v, want the final generation",
					again.Epsilon, again.Generation, again.Final, again.Cached)
			}
			exactRefs := frontierRefs(exact, points)
			for _, x := range points {
				pr, err := pickRetrying(s, PickRequest{Key: res.Key, Point: x})
				if err != nil {
					t.Fatal(err)
				}
				if !pr.Final || pr.Epsilon != 0 {
					t.Fatalf("post-refinement pick = eps %g final %v", pr.Epsilon, pr.Final)
				}
				if got := fmt.Sprint(renderAll(pr.Choices)); got != exactRefs[fmt.Sprint(x)] {
					t.Errorf("refined pick at %v diverged from the sequential exact path:\n got %s\nwant %s",
						x, got, exactRefs[fmt.Sprint(x)])
				}
			}
			st := s.Stats()
			if st.Refine.Completed != 2 || st.Refine.Swaps != 2 ||
				st.Refine.Failed != 0 || st.Refine.Cancelled != 0 ||
				st.Refine.Pending != 0 || st.Refine.Running != 0 {
				t.Errorf("refine stats after quiescence: %+v", st.Refine)
			}
		})
	}
}

// TestRefinedDocumentMatchesExactBytes: once refinement settles, the
// anytime server's persisted document is byte-identical to a classic
// (no-ladder) server's exact Prepare of the same template — the final
// generation is the exact path's result, not merely equivalent to it.
// Runs under the MPQ_TEST_WORKERS matrix in CI.
func TestRefinedDocumentMatchesExactBytes(t *testing.T) {
	tpl := testTemplate(21)
	w := poolWorkers(t)

	a := New(Options{Workers: w, Dir: t.TempDir(), RefineLadder: []float64{0.5, 0.1}, DonateWorkers: true})
	defer a.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	res, err := a.Prepare(ctx, tpl)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if res.Final {
		t.Fatalf("cold deadline Prepare served the final generation directly: %+v", res)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer wcancel()
	if err := a.WaitRefinement(wctx); err != nil {
		t.Fatal(err)
	}
	refined, err := a.Document(res.Key)
	if err != nil {
		t.Fatal(err)
	}

	b := New(Options{Workers: w, Dir: t.TempDir()})
	defer b.Close()
	exact, err := b.Prepare(context.Background(), tpl)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Key != res.Key {
		t.Fatalf("keys diverge: anytime %s, classic %s", res.Key, exact.Key)
	}
	classic, err := b.Document(exact.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refined, classic) {
		t.Errorf("refined final document (%d bytes) differs from the classic exact document (%d bytes)",
			len(refined), len(classic))
	}
}

// TestGenerationSwapRaces hammers Pick and PickBatch concurrently with
// the two background generation swaps: every answer must match exactly
// one generation's sequential reference — coarse before its swap,
// finer after, never a blend — and its Epsilon/Generation/Final fields
// must agree with the generation that produced it. A batch's answers
// must all come from one generation (the entry is pinned per request).
func TestGenerationSwapRaces(t *testing.T) {
	tpl := testTemplate(21)
	gens := map[float64]int{0.5: 0, 0.1: 1, 0: 2}
	refs := make(map[float64]map[string]string, len(gens))
	for eps := range gens {
		refs[eps] = frontierRefs(sequentialTier(t, tpl, eps), testPoints)
	}

	s := New(Options{Workers: poolWorkers(t), RefineLadder: []float64{0.5, 0.1}})
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	res, err := s.Prepare(ctx, tpl)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon != 0.5 {
		t.Fatalf("cold deadline Prepare served ε=%g, want the coarse 0.5", res.Epsilon)
	}

	// verify pins one answer to one generation. Safe from any goroutine.
	verify := func(eps float64, gen int, final bool, x geometry.Vector, choices []selection.Choice) bool {
		want, ok := refs[eps]
		if !ok {
			t.Errorf("pick served unknown generation ε=%g", eps)
			return false
		}
		if gen != gens[eps] || final != (eps == 0) {
			t.Errorf("generation metadata inconsistent: ε=%g gen=%d final=%v", eps, gen, final)
			return false
		}
		if got := fmt.Sprint(renderAll(choices)); got != want[fmt.Sprint(x)] {
			t.Errorf("pick at %v diverged from its generation's (ε=%g) reference:\n got %s\nwant %s",
				x, eps, got, want[fmt.Sprint(x)])
			return false
		}
		return true
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer wcancel()
		if err := s.WaitRefinement(wctx); err != nil {
			t.Error(err)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					if i > 0 {
						return
					}
				default:
				}
				if g%2 == 0 {
					x := testPoints[i%len(testPoints)]
					pr, err := pickRetrying(s, PickRequest{Key: res.Key, Point: x})
					if err != nil {
						t.Error(err)
						return
					}
					if !verify(pr.Epsilon, pr.Generation, pr.Final, x, pr.Choices) {
						return
					}
				} else {
					br, err := batchRetrying(s, PickBatchRequest{Key: res.Key, Points: testPoints})
					if err != nil {
						t.Error(err)
						return
					}
					for pi, x := range testPoints {
						if !verify(br.Epsilon, br.Generation, br.Final, x, br.Choices[pi]) {
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	<-done

	// Settled: the final generation serves, and both swaps landed.
	pr, err := pickRetrying(s, PickRequest{Key: res.Key, Point: testPoints[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Final || pr.Epsilon != 0 {
		t.Errorf("post-refinement pick = eps %g final %v, want the exact generation", pr.Epsilon, pr.Final)
	}
	st := s.Stats()
	if st.Refine.Completed != 2 || st.Refine.Swaps != 2 {
		t.Errorf("refine stats after quiescence: %+v", st.Refine)
	}
}

// TestRefineShutdownQuiescence: Close mid-refinement aborts the
// in-flight job at an optimizer checkpoint, drains the queued chain as
// cancelled, and leaves the job accounting balanced — the drain-path
// counterpart of TestFleetChaos's kill-driven coverage. The second
// half checks that cancelling the lifecycle context (Options.
// BaseContext) quiesces background refinement the same way while the
// server keeps serving its resident coarse generation.
func TestRefineShutdownQuiescence(t *testing.T) {
	// Large enough that refinement to ε=0 is still in flight at Close.
	tpl := Template{Workload: workload.Config{Tables: 6, Params: 2, Shape: workload.Star, Seed: 5}}
	ladder := []float64{0.5, 0.1}

	s := New(Options{Workers: poolWorkers(t), RefineLadder: ladder, DonateWorkers: true})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	res, err := s.Prepare(ctx, tpl)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if res.Final {
		t.Fatalf("cold deadline Prepare served the final generation: %+v", res)
	}
	s.Close() // must abort in-flight refinement, not wait it out
	st := s.Stats()
	if st.Refine.Running != 0 || st.Refine.Pending != 0 {
		t.Errorf("refiner not quiescent after Close: %+v", st.Refine)
	}
	if settled := st.Refine.Completed + st.Refine.Cancelled + st.Refine.Failed + st.Refine.Skipped; settled != st.Refine.Scheduled {
		t.Errorf("refine jobs unaccounted after Close: settled %d of %d (%+v)", settled, st.Refine.Scheduled, st.Refine)
	}
	// A non-resident template must queue, and the queue is closed (the
	// resident coarse generation may still serve from the cache fast
	// path — Close drains work, it does not unpublish answers).
	if _, err := s.Prepare(context.Background(), testTemplate(99)); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Prepare after Close = %v, want ErrServerClosed", err)
	}
	if err := s.WaitRefinement(context.Background()); err != nil {
		t.Errorf("WaitRefinement after Close = %v, want immediate nil", err)
	}

	base, bcancel := context.WithCancel(context.Background())
	s2 := New(Options{Workers: poolWorkers(t), RefineLadder: ladder, BaseContext: base, DonateWorkers: true})
	defer s2.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Minute)
	res2, err := s2.Prepare(ctx2, tpl)
	cancel2()
	if err != nil {
		t.Fatal(err)
	}
	bcancel()
	wctx, wcancel := context.WithTimeout(context.Background(), time.Minute)
	defer wcancel()
	if err := s2.WaitRefinement(wctx); err != nil {
		t.Fatal(err)
	}
	st2 := s2.Stats()
	if st2.Refine.Running != 0 || st2.Refine.Pending != 0 {
		t.Errorf("refiner not quiescent after lifecycle cancel: %+v", st2.Refine)
	}
	// The resident coarse generation keeps serving.
	pr, err := pickRetrying(s2, PickRequest{Key: res2.Key, Point: diagPoints(2)[0]})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Epsilon > ladder[0] {
		t.Errorf("post-cancel pick served ε=%g, coarser than anything the ladder produces", pr.Epsilon)
	}
}
