package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpq/internal/faultfs"
	"mpq/internal/fleet"
	"mpq/internal/geometry"
)

// chaosSeed returns the fault schedule's seed: MPQ_CHAOS_SEED when
// set (CI runs one fixed and one randomized seed), else a fixed
// default so local runs reproduce.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("MPQ_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("MPQ_CHAOS_SEED=%q: %v", s, err)
		}
		return v
	}
	return 20140901 // the paper's VLDB volume date; any fixed value works
}

// flakyPlanSetServer serves a server's documents like cmd/mpqserve
// does, but answers 500 while killed — a peer death the fleet must
// ride through.
type flakyPlanSetServer struct {
	ts   *httptest.Server
	dead atomic.Bool
}

func newFlakyPlanSetServer(s *Server) *flakyPlanSetServer {
	f := &flakyPlanSetServer{}
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.dead.Load() {
			http.Error(w, "peer down", http.StatusInternalServerError)
			return
		}
		key := r.URL.Path[len(fleet.PlanSetPath):]
		doc, err := s.Document(key)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(fleet.DocHashHeader, fleet.ContentHash(doc))
		w.Write(doc)
	}))
	return f
}

// TestFleetChaos is the failure-domain stress test (run under -race in
// CI): a three-server fleet over a fault-injected shared store and
// flaky peers serves a randomized mix of prepares, picks, and batch
// picks — some with live contexts, some cancelled, some under
// millisecond deadlines — while a killer goroutine takes peers up and
// down. The invariant: every pick that *succeeds* is byte-identical to
// the sequential reference path, no matter which failures surrounded
// it; failures themselves must be one of the declared, counted kinds.
func TestFleetChaos(t *testing.T) {
	seed := chaosSeed(t)
	t.Logf("chaos seed %d (override with MPQ_CHAOS_SEED)", seed)

	templates := []Template{testTemplate(21), testTemplate(33), testTemplate(7)}

	// Sequential ground truth, one worker, no serving stack.
	expected := make([]map[string][]string, len(templates))
	for i, tpl := range templates {
		expected[i] = sequentialPicks(t, tpl)
	}

	// The shared store sits on a fault-injected filesystem: reads and
	// writes fail or stall according to the seeded schedule.
	inj := faultfs.NewInjector(nil, faultfs.Config{
		Seed:        seed,
		ErrorRate:   0.08,
		Latency:     200 * time.Microsecond,
		LatencyRate: 0.2,
	})
	shared, err := fleet.NewDirStoreFS(t.TempDir(), inj)
	if err != nil {
		t.Fatal(err)
	}

	// Three servers with different source chains: s0 computes and
	// publishes, s1 adds peer fetches, s2 has *only* peers — its cache
	// misses must ride through peer deaths by recomputing.
	s0 := New(Options{Workers: 2, Index: true, Shared: shared})
	defer s0.Close()
	f0 := newFlakyPlanSetServer(s0)
	defer f0.ts.Close()

	peerOpts := fleet.PeerOptions{
		Retries:          1,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
		Seed:             seed,
	}
	s1 := New(Options{Workers: 2, Index: true, Shared: shared, CacheBytes: 10 << 10,
		Peers: fleet.NewPeerClientOptions([]string{f0.ts.URL}, peerOpts)})
	defer s1.Close()
	f1 := newFlakyPlanSetServer(s1)
	defer f1.ts.Close()

	// s2's cache holds two of the three documents, so picks keep
	// evicting and reloading — through peers that keep dying.
	s2 := New(Options{Workers: 2, Index: true, CacheBytes: 10 << 10,
		Peers: fleet.NewPeerClientOptions([]string{f0.ts.URL, f1.ts.URL}, peerOpts)})
	defer s2.Close()

	servers := []*Server{s0, s1, s2}
	flaky := []*flakyPlanSetServer{f0, f1}

	// Every server prepares every template once with a live context so
	// all keys exist fleet-wide (retrying through injected I/O errors).
	keys := make([]string, len(templates))
	for _, s := range servers {
		for i, tpl := range templates {
			var prep PrepareResult
			var err error
			for attempt := 0; attempt < 20; attempt++ {
				prep, err = s.Prepare(context.Background(), tpl)
				if err == nil {
					break
				}
			}
			if err != nil {
				t.Fatalf("seeding Prepare: %v", err)
			}
			keys[i] = prep.Key
		}
	}

	// The killer flips peers dead/alive on the seeded schedule.
	stopKiller := make(chan struct{})
	var killerWG sync.WaitGroup
	killerWG.Add(1)
	go func() {
		defer killerWG.Done()
		rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
		for {
			select {
			case <-stopKiller:
				for _, f := range flaky {
					f.dead.Store(false)
				}
				return
			case <-time.After(time.Duration(1+rng.Intn(5)) * time.Millisecond):
				f := flaky[rng.Intn(len(flaky))]
				f.dead.Store(rng.Intn(2) == 0)
			}
		}
	}()

	// Client goroutines issue a randomized mix of operations. Allowed
	// failures are the declared kinds only; successes must match the
	// sequential reference exactly.
	allowedErr := func(err error) bool {
		return errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, ErrQueueFull) ||
			errors.Is(err, ErrUnknownPlanSet) ||
			errors.Is(err, ErrInternal)
	}
	const clients = 6
	const opsPerClient = 40
	var wg sync.WaitGroup
	var successes, failures atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for op := 0; op < opsPerClient; op++ {
				s := servers[rng.Intn(len(servers))]
				ti := rng.Intn(len(templates))
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch rng.Intn(4) {
				case 0: // cancelled before the call
					ctx, cancel = context.WithCancel(ctx)
					cancel()
				case 1: // tight deadline — may or may not make it
					ctx, cancel = context.WithTimeout(ctx, time.Duration(100+rng.Intn(3000))*time.Microsecond)
				}
				switch rng.Intn(3) {
				case 0:
					_, err := s.Prepare(ctx, templates[ti])
					if err != nil && !allowedErr(err) {
						t.Errorf("client %d op %d: Prepare failed oddly: %v", c, op, err)
					}
				case 1:
					x := testPoints[rng.Intn(len(testPoints))]
					res, err := s.Pick(ctx, PickRequest{Key: keys[ti], Point: x, Policy: PolicyFrontier})
					if err != nil {
						failures.Add(1)
						if !allowedErr(err) {
							t.Errorf("client %d op %d: Pick failed oddly: %v", c, op, err)
						}
					} else {
						successes.Add(1)
						got := renderAll(res.Choices)
						want := expected[ti][expectKey("frontier", x)]
						if fmt.Sprint(got) != fmt.Sprint(want) {
							t.Errorf("client %d op %d: pick diverged from the sequential path:\n got %v\nwant %v", c, op, got, want)
						}
					}
				default:
					bres, err := s.PickBatch(ctx, PickBatchRequest{
						Key: keys[ti], Points: testPoints, Policy: PolicyFrontier,
					})
					if err != nil {
						failures.Add(1)
						if !allowedErr(err) {
							t.Errorf("client %d op %d: PickBatch failed oddly: %v", c, op, err)
						}
					} else {
						successes.Add(1)
						for pi, x := range testPoints {
							got := renderAll(bres.Choices[pi])
							want := expected[ti][expectKey("frontier", x)]
							if fmt.Sprint(got) != fmt.Sprint(want) {
								t.Errorf("client %d op %d: batch pick at %v diverged:\n got %v\nwant %v", c, op, x, got, want)
							}
						}
					}
				}
				cancel()
			}
		}(c)
	}
	wg.Wait()
	close(stopKiller)
	killerWG.Wait()

	if successes.Load() == 0 {
		t.Error("chaos produced zero successful picks — the schedule is too hostile to prove anything")
	}
	t.Logf("picks: %d succeeded, %d failed (allowed kinds)", successes.Load(), failures.Load())

	// Peers came back up: a fresh pick on every server must succeed
	// (bounded retries through residual injected store errors).
	for si, s := range servers {
		for ti := range templates {
			var err error
			for attempt := 0; attempt < 20; attempt++ {
				_, err = s.Pick(context.Background(), PickRequest{
					Key: keys[ti], Point: geometry.Vector{0.5}, Policy: PolicyFrontier,
				})
				if err == nil {
					break
				}
			}
			if err != nil {
				t.Errorf("server %d never recovered for template %d: %v", si, ti, err)
			}
		}
	}

	// Accounting: every admission slot handed back, failure counters
	// landed in Stats.
	for si, s := range servers {
		st := s.Stats()
		if st.Admission.Running != 0 || st.Admission.Queued != 0 {
			t.Errorf("server %d admission not quiescent: %+v", si, st.Admission)
		}
		t.Logf("server %d: cancels=%d deadlines=%d peerRetries=%d breakerTrips=%d quarantined=%d reloads=%d",
			si, st.Cancellations, st.DeadlineExpiries, st.PeerRetries, st.PeerBreakerTrips, st.QuarantinedBlobs, st.Reloads)
	}
}
