package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mpq/internal/core"
	"mpq/internal/fleet"
	"mpq/internal/geometry"
	"mpq/internal/selection"
	"mpq/internal/workload"
)

// pickAllPolicies runs every selection policy at x and renders the
// results (including errors) so responses compare byte-identically.
func pickAllPolicies(t *testing.T, s *Server, key string, x geometry.Vector, metrics int) []string {
	t.Helper()
	weights := make([]float64, metrics)
	weights[0] = 1
	for i := 1; i < metrics; i++ {
		weights[i] = 10000
	}
	order := make([]int, metrics)
	for i := range order {
		order[i] = metrics - 1 - i
	}
	reqs := []PickRequest{
		{Key: key, Point: x, Policy: PolicyFrontier},
		{Key: key, Point: x, Policy: PolicyWeightedSum, Weights: weights},
		{Key: key, Point: x, Policy: PolicyMinimizeSubjectTo, Minimize: 0,
			Bounds: []selection.Bound{{Metric: metrics - 1, Max: 1e300}}},
		{Key: key, Point: x, Policy: PolicyLexicographic, Order: order},
	}
	out := make([]string, 0, len(reqs))
	for _, req := range reqs {
		res, err := pickRetrying(s, req)
		out = append(out, fmt.Sprintf("%v | err=%v", renderAll(res.Choices), err))
	}
	return out
}

// planSetServer exposes a server's prepared documents the way
// cmd/mpqserve does, for peer fetches in tests.
func planSetServer(s *Server) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, fleet.PlanSetPath)
		doc, err := s.Document(key)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(fleet.DocHashHeader, fleet.ContentHash(doc))
		w.Write(doc)
	}))
}

// fleetShapeCases are the acceptance property test's workloads: all
// four join-graph shapes, with a two-parameter clique for the
// multi-dimensional path.
var fleetShapeCases = []struct {
	cfg    workload.Config
	points []geometry.Vector
}{
	{workload.Config{Tables: 4, Params: 1, Shape: workload.Chain, Seed: 21},
		[]geometry.Vector{{0.05}, {0.4}, {0.95}}},
	{workload.Config{Tables: 4, Params: 1, Shape: workload.Star, Seed: 33},
		[]geometry.Vector{{0.1}, {0.5}, {0.9}}},
	{workload.Config{Tables: 4, Params: 1, Shape: workload.Cycle, Seed: 7},
		[]geometry.Vector{{0.2}, {0.6}, {0.99}}},
	{workload.Config{Tables: 4, Params: 2, Shape: workload.Clique, Seed: 5},
		[]geometry.Vector{{0.2, 0.3}, {0.5, 0.5}, {0.9, 0.1}}},
}

// TestFleetPickEquivalence is the fleet acceptance property test: for
// every join-graph shape and both precision tiers (exact and
// ε-approximate), Pick results must be byte-identical whether the plan
// set was computed locally, loaded from the shared on-disk store, or
// fetched from an HTTP peer — across all four selection policies (run
// under -race in CI).
func TestFleetPickEquivalence(t *testing.T) {
	for _, tc := range fleetShapeCases {
		for _, eps := range []float64{0, 0.05} {
			tc, eps := tc, eps
			t.Run(fmt.Sprintf("%s-%dp/eps=%g", tc.cfg.Shape, tc.cfg.Params, eps), func(t *testing.T) {
				sharedA, err := fleet.NewDirStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				tpl := Template{Workload: tc.cfg, Epsilon: &eps}

				// Server A computes and publishes to the shared store.
				a := New(Options{Workers: 2, Index: true, Shared: sharedA})
				defer a.Close()
				prepA, err := a.Prepare(context.Background(), tpl)
				if err != nil {
					t.Fatal(err)
				}
				if prepA.Cached {
					t.Fatal("first Prepare reported cached")
				}
				if st := a.Stats(); st.SharedPuts != 1 {
					t.Errorf("compute server published %d documents, want 1", st.SharedPuts)
				}

				// Server B loads from the shared store (no optimization).
				b := New(Options{Workers: 2, Index: true, Shared: sharedA})
				defer b.Close()
				prepB, err := b.Prepare(context.Background(), tpl)
				if err != nil {
					t.Fatal(err)
				}
				if !prepB.Cached || prepB.Key != prepA.Key {
					t.Errorf("shared-store Prepare: cached=%v key match=%v", prepB.Cached, prepB.Key == prepA.Key)
				}
				if st := b.Stats(); st.SharedHits != 1 {
					t.Errorf("shared hits = %d, want 1", st.SharedHits)
				}

				// Server C fetches from peer A over HTTP (its own shared dir
				// starts empty) and re-publishes the fetched document there.
				peerSrv := planSetServer(a)
				defer peerSrv.Close()
				sharedC, err := fleet.NewDirStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				c := New(Options{
					Workers: 2, Index: true,
					Shared: sharedC,
					Peers:  fleet.NewPeerClient([]string{peerSrv.URL}, 0),
				})
				defer c.Close()
				prepC, err := c.Prepare(context.Background(), tpl)
				if err != nil {
					t.Fatal(err)
				}
				if !prepC.Cached || prepC.Key != prepA.Key {
					t.Errorf("peer Prepare: cached=%v key match=%v", prepC.Cached, prepC.Key == prepA.Key)
				}
				if st := c.Stats(); st.PeerHits != 1 || st.SharedPuts != 1 {
					t.Errorf("peer server stats: peer hits = %d (want 1), shared puts = %d (want 1)",
						st.PeerHits, st.SharedPuts)
				}

				ps, ok := a.PlanSet(prepA.Key)
				if !ok {
					t.Fatal("compute server lost its plan set")
				}
				if ps.Epsilon != eps {
					t.Errorf("plan set epsilon = %v, want %v", ps.Epsilon, eps)
				}
				for _, x := range tc.points {
					if !ps.Space.ContainsPoint(x, 1e-9) {
						continue
					}
					got := map[string][]string{
						"local":  pickAllPolicies(t, a, prepA.Key, x, len(ps.Metrics)),
						"shared": pickAllPolicies(t, b, prepB.Key, x, len(ps.Metrics)),
						"peer":   pickAllPolicies(t, c, prepC.Key, x, len(ps.Metrics)),
					}
					for name, res := range got {
						if fmt.Sprint(res) != fmt.Sprint(got["local"]) {
							t.Errorf("%s picks at %v differ from local:\n  local: %v\n  %s: %v",
								name, x, got["local"], name, res)
						}
					}
				}
			})
		}
	}
}

// TestServeStatsAccountingBalance is the cache-accounting regression
// test: with a budget small enough to force evictions and a shared
// store to reload from, admitted − evicted must equal resident (bytes
// and entries) at every checkpoint, and evicted plan sets must serve
// picks again via reload.
func TestServeStatsAccountingBalance(t *testing.T) {
	shared, err := fleet.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	checkBalance := func(st Stats) {
		t.Helper()
		if st.Cache.AdmittedBytes-st.Cache.EvictedBytes != st.Cache.ResidentBytes {
			t.Errorf("byte accounting unbalanced: admitted %d − evicted %d != resident %d",
				st.Cache.AdmittedBytes, st.Cache.EvictedBytes, st.Cache.ResidentBytes)
		}
		if st.Cache.Admissions-st.Cache.Evictions != int64(st.Cache.ResidentEntries) {
			t.Errorf("entry accounting unbalanced: admitted %d − evicted %d != resident %d",
				st.Cache.Admissions, st.Cache.Evictions, st.Cache.ResidentEntries)
		}
		if st.CachedPlanSets != st.Cache.ResidentEntries {
			t.Errorf("CachedPlanSets = %d, cache reports %d residents", st.CachedPlanSets, st.Cache.ResidentEntries)
		}
	}

	// A budget of one small document (the chain-4t docs are ~4.5KB
	// each): every new template evicts the previous one.
	s := New(Options{Workers: 1, Index: true, Shared: shared, CacheBytes: 6 << 10})
	defer s.Close()
	var keys []string
	for seed := int64(21); seed < 24; seed++ {
		prep, err := s.Prepare(context.Background(), testTemplate(seed))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, prep.Key)
		checkBalance(s.Stats())
	}
	st := s.Stats()
	if st.Cache.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget across 3 templates: %+v", 6<<10, st.Cache)
	}

	// Every key — evicted or resident — still picks, via reload.
	for _, key := range keys {
		if _, err := s.Pick(context.Background(), PickRequest{Key: key, Point: testPoints[2]}); err != nil {
			t.Fatalf("pick on key %s after evictions: %v", key, err)
		}
	}
	st = s.Stats()
	checkBalance(st)
	if st.Reloads == 0 {
		t.Error("no pick-time reloads recorded despite evictions")
	}
	if st.Cache.Readmissions == 0 {
		t.Error("no re-admissions recorded despite reloads")
	}
	if st.Cache.Pinned != 0 {
		t.Errorf("pins leaked: %d", st.Cache.Pinned)
	}

	// Without any reload source, an evicted key's pick degrades to
	// ErrUnknownPlanSet (no silent recompute at pick time).
	lone := New(Options{Workers: 1, CacheBytes: 1})
	defer lone.Close()
	prepA, err := lone.Prepare(context.Background(), testTemplate(21))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lone.Prepare(context.Background(), testTemplate(33)); err != nil {
		t.Fatal(err)
	}
	if _, err := lone.Pick(context.Background(), PickRequest{Key: prepA.Key, Point: testPoints[0]}); !errors.Is(err, ErrUnknownPlanSet) {
		t.Errorf("pick on evicted key without sources = %v, want ErrUnknownPlanSet", err)
	}
	checkBalance(lone.Stats())
}

// TestFleetStress drives a 3-server fleet over one shared dir with
// concurrent Prepares, Picks, batches and evictions (run under -race
// in CI) and asserts every response is byte-identical to the
// single-server sequential path.
func TestFleetStress(t *testing.T) {
	shared, err := fleet.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{21, 33, 47}
	templates := make([]Template, len(seeds))
	expected := make([]map[string][]string, len(seeds))
	for i, seed := range seeds {
		templates[i] = testTemplate(seed)
		expected[i] = sequentialPicks(t, templates[i])
	}

	const nServers = 3
	servers := make([]*Server, nServers)
	for i := range servers {
		opts := Options{Workers: 2, QueueDepth: 16, Index: true, Shared: shared}
		if i > 0 {
			// Eviction pressure on the followers: every entry fights for
			// a budget sized below two documents.
			opts.CacheBytes = 6 << 10
		}
		servers[i] = New(opts)
		defer servers[i].Close()
	}

	const clients = 6
	iterations := 8
	if testing.Short() {
		iterations = 3
	}
	var wg sync.WaitGroup
	errCh := make(chan error, clients*nServers)
	for si, s := range servers {
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(si, c int, s *Server) {
				defer wg.Done()
				for it := 0; it < iterations; it++ {
					i := (si + c + it) % len(templates)
					prep, err := prepareRetrying(s, templates[i])
					if err != nil {
						errCh <- fmt.Errorf("server %d client %d prepare: %w", si, c, err)
						return
					}
					x := testPoints[(c+it)%len(testPoints)]
					res, err := pickRetrying(s, PickRequest{Key: prep.Key, Point: x, Policy: PolicyFrontier})
					if err != nil {
						errCh <- fmt.Errorf("server %d client %d pick: %w", si, c, err)
						return
					}
					if want := expected[i][expectKey("frontier", x)]; fmt.Sprint(renderAll(res.Choices)) != fmt.Sprint(want) {
						errCh <- fmt.Errorf("server %d: frontier at %v = %v, sequential %v",
							si, x, renderAll(res.Choices), want)
						return
					}
					bres, err := s.PickBatch(context.Background(), PickBatchRequest{
						Key: prep.Key, Points: testPoints,
						Policy: PolicyWeightedSum, Weights: []float64{1, 10000},
					})
					if errors.Is(err, ErrQueueFull) {
						continue
					}
					if err != nil {
						errCh <- fmt.Errorf("server %d client %d batch: %w", si, c, err)
						return
					}
					for pi, px := range testPoints {
						if want := expected[i][expectKey("weighted", px)]; fmt.Sprint(renderAll(bres.Choices[pi])) != fmt.Sprint(want) {
							errCh <- fmt.Errorf("server %d: weighted batch at %v = %v, sequential %v",
								si, px, renderAll(bres.Choices[pi]), want)
							return
						}
					}
				}
			}(si, c, s)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	var sharedHits, computes int64
	for si, s := range servers {
		st := s.Stats()
		if st.Cache.AdmittedBytes-st.Cache.EvictedBytes != st.Cache.ResidentBytes ||
			st.Cache.Admissions-st.Cache.Evictions != int64(st.Cache.ResidentEntries) {
			t.Errorf("server %d cache accounting unbalanced: %+v", si, st.Cache)
		}
		if st.Cache.Pinned != 0 {
			t.Errorf("server %d leaked %d pins", si, st.Cache.Pinned)
		}
		sharedHits += st.SharedHits
		computes += st.Prepares - st.PrepareHits - st.SharedHits - st.PrepareDiskHits - st.PeerHits
	}
	if sharedHits == 0 {
		t.Error("fleet recorded no shared-store hits")
	}
	// Each template is computed at most once per *server* (singleflight
	// plus shared store); across the fleet the shared store should keep
	// most servers from computing at all — but any interleaving computes
	// each template at most nServers times.
	if computes > int64(len(templates)*nServers) {
		t.Errorf("fleet computed %d times for %d templates", computes, len(templates))
	}
	// The shared store holds every template for future fleet members.
	hits, _, puts := shared.Stats()
	if puts < int64(len(templates)) {
		t.Errorf("shared store received %d puts, want >= %d", puts, len(templates))
	}
	_ = hits
}

// TestMalformedKeysNeverReachSources: keys that do not have the
// planSetKey shape (32 hex digits) are unknown by construction — a
// request-supplied traversal string must never be joined into a
// filesystem path or a peer URL.
func TestMalformedKeysNeverReachSources(t *testing.T) {
	dir := t.TempDir()
	// Plant a decoy where a traversal through Options.Dir would land.
	if err := os.WriteFile(filepath.Join(dir, "secret.json"), []byte(`{"v":1}`), 0o666); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "docs")
	if err := os.MkdirAll(sub, 0o777); err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 1, Dir: sub})
	defer s.Close()
	for _, key := range []string{"../secret", "..%2Fsecret", "", "UPPERCASE00000000000000000000000", "short"} {
		if _, err := s.Document(key); !errors.Is(err, ErrUnknownPlanSet) {
			t.Errorf("Document(%q) = %v, want ErrUnknownPlanSet", key, err)
		}
		if _, err := s.Pick(context.Background(), PickRequest{Key: key, Point: geometry.Vector{0.5}}); !errors.Is(err, ErrUnknownPlanSet) {
			t.Errorf("Pick(%q) = %v, want ErrUnknownPlanSet", key, err)
		}
	}
}

// TestServerDonatesIdleWorkers: with DonateWorkers on and split jobs
// forced, an idle pool worker joins the in-flight Prepare's split jobs
// and the results remain byte-identical to the sequential path.
func TestServerDonatesIdleWorkers(t *testing.T) {
	tpl := testTemplate(21)
	expected := sequentialPicks(t, tpl)

	opts := Options{Workers: 3, DonateWorkers: true}
	opts.Optimizer = core.DefaultOptions()
	opts.Optimizer.SplitCandidates = 1 // force split jobs
	s := New(opts)
	defer s.Close()
	prep, err := s.Prepare(context.Background(), tpl)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range testPoints {
		got := serverPicks(t, s, prep.Key, x)
		for k, want := range got {
			if fmt.Sprint(expected[k]) != fmt.Sprint(want) {
				t.Errorf("%s: donated-prepare server returned %v, sequential path %v", k, want, expected[k])
			}
		}
	}
	st := s.Stats()
	if st.DonatedTasks == 0 {
		t.Error("no donated worker stints recorded despite forced splits and idle workers")
	}
	if st.SplitJobs == 0 {
		t.Error("no split jobs recorded despite SplitCandidates=1")
	}
}

// TestMaxConcurrentPrepares: with a cap of 1, concurrent Prepares of
// distinct templates serialize through the admission queue (and all
// succeed).
func TestMaxConcurrentPrepares(t *testing.T) {
	s := New(Options{Workers: 4, MaxConcurrentPrepares: 1})
	defer s.Close()
	// Occupy the only admission slot so the Prepares demonstrably queue
	// behind the cap, deterministically.
	release, _ := s.admission.Acquire(context.Background())
	seeds := []int64{21, 33, 47}
	var wg sync.WaitGroup
	errCh := make(chan error, len(seeds))
	for _, seed := range seeds {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			if _, err := prepareRetrying(s, testTemplate(seed)); err != nil {
				errCh <- err
			}
		}(seed)
	}
	for s.admission.Stats().Queued < len(seeds) {
		// All three must be waiting before the slot frees.
		time.Sleep(100 * time.Microsecond)
	}
	release()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st := s.Stats()
	if st.Admission.Admitted != 4 { // the held slot + three Prepares
		t.Errorf("admitted = %d, want 4", st.Admission.Admitted)
	}
	if st.Admission.Waited == 0 {
		t.Error("no Prepare queued behind the admission cap")
	}
	if st.Admission.Running != 0 || st.Admission.Queued != 0 {
		t.Errorf("admission not quiescent: %+v", st.Admission)
	}
	if st.CachedPlanSets != 3 {
		t.Errorf("cached plan sets = %d, want 3", st.CachedPlanSets)
	}
}
