package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"mpq/internal/geometry"
	"mpq/internal/workload"
)

// slowTemplate takes seconds to optimize sequentially — long enough
// that a cancellation mid-optimization is observable.
func slowTemplate() Template {
	return Template{Workload: workload.Config{
		Tables: 5, Params: 2, Shape: workload.Clique, Seed: 3,
	}}
}

func TestPrepareCancelledBeforeStart(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Prepare(ctx, testTemplate(21)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Prepare = %v, want context.Canceled", err)
	}
	if st := s.Stats(); st.Cancellations != 1 {
		t.Errorf("cancellations = %d, want 1", st.Cancellations)
	}
	// The server is unharmed: the same template still prepares.
	if _, err := s.Prepare(context.Background(), testTemplate(21)); err != nil {
		t.Fatalf("Prepare after a cancelled attempt: %v", err)
	}
}

func TestPickDeadlineExpired(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	prep, err := s.Prepare(context.Background(), testTemplate(21))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.Pick(ctx, PickRequest{Key: prep.Key, Point: testPoints[0]}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired Pick = %v, want context.DeadlineExceeded", err)
	}
	if _, err := s.PickBatch(ctx, PickBatchRequest{Key: prep.Key, Points: testPoints}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired PickBatch = %v, want context.DeadlineExceeded", err)
	}
	if st := s.Stats(); st.DeadlineExpiries != 2 {
		t.Errorf("deadline expiries = %d, want 2", st.DeadlineExpiries)
	}
}

// TestPrepareAbandonedWhileQueued wedges the only worker, queues a
// Prepare, cancels it, and verifies the abandoned job never runs: the
// caller returns promptly with context.Canceled, and the server keeps
// serving afterwards — no leaked worker, admission slot, or
// singleflight key.
func TestPrepareAbandonedWhileQueued(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	blocker := &job{done: make(chan struct{}), run: func(w *worker) {
		close(started)
		<-release
	}}
	if err := s.submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started // the only worker is wedged

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Prepare(ctx, testTemplate(21))
		errc <- err
	}()
	// Wait for the Prepare to register its singleflight entry (it is
	// then queued behind the blocker).
	for {
		s.mu.Lock()
		n := len(s.inflight)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoned Prepare = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned Prepare did not return while its job was queued")
	}

	// The singleflight key must be gone — a wedged one would dedupe all
	// future Prepares of this template into a dead flight.
	s.mu.Lock()
	leaked := len(s.inflight)
	s.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d singleflight entries leaked by the abandoned Prepare", leaked)
	}

	close(release)
	prep, err := s.Prepare(context.Background(), testTemplate(21))
	if err != nil {
		t.Fatalf("Prepare after abandonment: %v", err)
	}
	if prep.Cached {
		t.Error("the abandoned Prepare's job ran anyway (result was cached)")
	}
	st := s.Stats()
	if st.Cancellations != 1 {
		t.Errorf("cancellations = %d, want 1", st.Cancellations)
	}
	if st.Admission.Running != 0 || st.Admission.Queued != 0 {
		t.Errorf("admission not quiescent: %+v", st.Admission)
	}
}

// TestPrepareDeadlineMidOptimize cancels an optimization that is
// already running. The scheduler's cooperative checkpoints must stop
// it well before completion (the workload takes seconds sequentially),
// the expiry must be counted, and the same server must then complete
// the same template cleanly — proving the abandoned run released its
// worker, admission slot, and singleflight key.
func TestPrepareDeadlineMidOptimize(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second optimization")
	}
	s := New(Options{Workers: 2})
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Prepare(ctx, slowTemplate())
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("optimization finished before the deadline on this machine")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-optimize Prepare = %v, want context.DeadlineExceeded", err)
	}
	// The full optimization takes ~3s sequentially; a cooperative stop
	// must come back far sooner than completion would.
	if elapsed > 2*time.Second {
		t.Errorf("cancelled Prepare took %v — checkpoints not releasing the scheduler", elapsed)
	}
	if st := s.Stats(); st.DeadlineExpiries != 1 {
		t.Errorf("deadline expiries = %d, want 1", st.DeadlineExpiries)
	}

	// The abandoned run must not poison the key: a fresh Prepare of the
	// same template completes and yields a usable plan set.
	prep, err := s.Prepare(context.Background(), slowTemplate())
	if err != nil {
		t.Fatalf("Prepare after mid-optimize abandonment: %v", err)
	}
	if prep.NumPlans == 0 {
		t.Error("post-abandonment Prepare returned an empty plan set")
	}
	if _, err := s.Pick(context.Background(), PickRequest{Key: prep.Key, Point: geometry.Vector{0.5, 0.5}}); err != nil {
		t.Fatalf("Pick after recovery: %v", err)
	}
}

// TestPrepareWaiterSurvivesCancelledWinner: when the singleflight
// winner's caller gives up, a waiter with a live context must not
// inherit the cancellation — it retries and becomes the new winner.
func TestPrepareWaiterSurvivesCancelledWinner(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second optimization")
	}
	s := New(Options{Workers: 2})
	defer s.Close()

	winnerCtx, cancelWinner := context.WithCancel(context.Background())
	winnerErr := make(chan error, 1)
	go func() {
		_, err := s.Prepare(winnerCtx, slowTemplate())
		winnerErr <- err
	}()
	// Wait until the winner's flight is registered, then join as a
	// waiter with a background context.
	for {
		s.mu.Lock()
		n := len(s.inflight)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	waiterRes := make(chan error, 1)
	go func() {
		prep, err := s.Prepare(context.Background(), slowTemplate())
		if err == nil && prep.NumPlans == 0 {
			err = errors.New("empty plan set")
		}
		waiterRes <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancelWinner()
	if err := <-winnerErr; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("winner = %v, want nil or context.Canceled", err)
	}
	select {
	case err := <-waiterRes:
		if err != nil {
			t.Fatalf("waiter inherited the winner's fate: %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("waiter never completed after the winner was cancelled")
	}
}
