package serve

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mpq/internal/obs"
)

// statsLeafPaths walks the Stats struct and returns every leaf field as
// a dotted path ("Cache.Hits"). Nested structs recurse; everything else
// (ints, floats, durations) is a leaf.
func statsLeafPaths(t *testing.T, typ reflect.Type, prefix string) []string {
	t.Helper()
	var out []string
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		path := f.Name
		if prefix != "" {
			path = prefix + "." + f.Name
		}
		if f.Type.Kind() == reflect.Struct && f.Type != reflect.TypeOf(time.Duration(0)) {
			out = append(out, statsLeafPaths(t, f.Type, path)...)
			continue
		}
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int64, reflect.Float64:
			out = append(out, path)
		case reflect.Slice:
			// No slice-typed Stats fields exist today; if one appears it
			// needs an explicit metric decision, not silent omission.
			t.Fatalf("Stats field %s is a slice; extend the metrics adapter deliberately", path)
		default:
			t.Fatalf("Stats field %s has unhandled kind %v", path, f.Type.Kind())
		}
	}
	return out
}

// TestStatMetricsCoverEveryStatsField is the drift guard: every leaf
// field of Stats must have a metric binding, and every binding must
// name a real field.
func TestStatMetricsCoverEveryStatsField(t *testing.T) {
	leaves := statsLeafPaths(t, reflect.TypeOf(Stats{}), "")
	bound := make(map[string]statMetric, len(statMetrics))
	names := make(map[string]bool, len(statMetrics))
	for _, m := range statMetrics {
		if _, dup := bound[m.field]; dup {
			t.Errorf("field %s bound twice", m.field)
		}
		bound[m.field] = m
		if names[m.name] {
			t.Errorf("metric name %s used twice", m.name)
		}
		names[m.name] = true
		if m.kind == obs.KindCounter && !strings.HasSuffix(m.name, "_total") {
			t.Errorf("counter %s does not end in _total", m.name)
		}
		if m.kind == obs.KindGauge && strings.HasSuffix(m.name, "_total") {
			t.Errorf("gauge %s ends in _total", m.name)
		}
	}
	leafSet := make(map[string]bool, len(leaves))
	for _, path := range leaves {
		leafSet[path] = true
		if _, ok := bound[path]; !ok {
			t.Errorf("Stats field %s has no metric binding in statMetrics", path)
		}
	}
	for field := range bound {
		if !leafSet[field] {
			t.Errorf("statMetrics binds %s, which is not a Stats field", field)
		}
	}
}

// TestMetricsMatchStatsUnderLoad drives the server concurrently —
// prepares (fresh, cached, cancelled, expired), picks, batches — then
// at quiesce asserts that every /metrics sample equals the
// corresponding Stats field, and that the scrape passes the exposition
// lint and stays monotonic across scrapes.
func TestMetricsMatchStatsUnderLoad(t *testing.T) {
	tel, err := obs.OpenTelemetry(t.TempDir(), obs.TelemetryOptions{Buckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewTraceRing(64)
	reg := obs.NewRegistry()
	ring.Instrument(reg)

	s := New(Options{
		Workers:               2,
		Dir:                   t.TempDir(),
		Index:                 true,
		CacheBytes:            1 << 20,
		MaxConcurrentPrepares: 1,
		Trace:                 ring,
		Telemetry:             tel,
	})
	defer s.Close()
	s.RegisterMetrics(reg)

	scrape := func() string {
		var b strings.Builder
		if err := reg.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := scrape()

	ctx := context.Background()
	var wg sync.WaitGroup
	for seed := int64(1); seed <= 3; seed++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tpl := testTemplate(seed)
			res, err := s.Prepare(ctx, tpl)
			if err != nil {
				t.Errorf("prepare seed %d: %v", seed, err)
				return
			}
			if _, err := s.Prepare(ctx, tpl); err != nil { // cache hit
				t.Errorf("re-prepare seed %d: %v", seed, err)
			}
			for _, x := range testPoints {
				if _, err := s.Pick(ctx, PickRequest{Key: res.Key, Point: x}); err != nil {
					t.Errorf("pick seed %d: %v", seed, err)
				}
			}
			if _, err := s.PickBatch(ctx, PickBatchRequest{Key: res.Key, Points: testPoints}); err != nil {
				t.Errorf("batch seed %d: %v", seed, err)
			}
		}(seed)
	}
	wg.Wait()

	// Deterministic context failures: an already-cancelled and an
	// already-expired request each count once at the API boundary.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.Prepare(cancelled, testTemplate(1)); err == nil {
		t.Fatal("prepare with cancelled ctx succeeded")
	}
	expired, cancel2 := context.WithDeadline(ctx, time.Time{})
	defer cancel2()
	if _, err := s.Pick(expired, PickRequest{Key: "0", Point: testPoints[0]}); err == nil {
		t.Fatal("pick with expired ctx succeeded")
	}

	// Quiesced: one Stats snapshot and one scrape must agree exactly.
	text := scrape()
	st := s.Stats()
	fams, err := obs.ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if errs := obs.Lint(fams); len(errs) != 0 {
		t.Fatalf("scrape fails exposition lint: %v", errs)
	}
	prev, err := obs.ParseExposition(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if errs := obs.CheckMonotonic(prev, fams); len(errs) != 0 {
		t.Fatalf("counters regressed between scrapes: %v", errs)
	}

	values := make(map[string]float64)
	for _, f := range fams {
		for _, smp := range f.Samples {
			if len(smp.Labels) == 0 {
				values[smp.Name] = smp.Value
			}
		}
	}
	for _, m := range statMetrics {
		got, ok := values[m.name]
		if !ok {
			t.Errorf("scrape is missing %s", m.name)
			continue
		}
		if want := m.get(&st); got != want {
			t.Errorf("%s = %v, stats field %s = %v", m.name, got, m.field, want)
		}
	}

	// Sanity: the load actually moved the interesting counters.
	if st.Prepares != 6 || st.Picks != 30 || st.Cancellations != 1 || st.DeadlineExpiries != 1 {
		t.Fatalf("unexpected load shape: %+v", st)
	}

	// The side channels recorded too: telemetry binned the pick points
	// and the trace ring carries the computed flights with phases.
	ts := tel.Stats()
	if ts.Recorded != 30 {
		t.Fatalf("telemetry recorded %d points, want 30", ts.Recorded)
	}
	if want := tel.Stats().Recorded; values["mpq_telemetry_recorded"] != float64(want) {
		t.Fatalf("mpq_telemetry_recorded = %v, want %v", values["mpq_telemetry_recorded"], want)
	}
	if ring.Total() != 3 {
		t.Fatalf("trace ring holds %d flights, want 3 computed prepares", ring.Total())
	}
	for _, ev := range ring.Events() {
		if ev.Source != "computed" || ev.Error != "" {
			t.Fatalf("trace event %+v", ev)
		}
		var phases []string
		for _, p := range ev.Phases {
			phases = append(phases, p.Name)
		}
		want := "admission_wait queue_wait lookup optimize index_build save"
		if strings.Join(phases, " ") != want {
			t.Fatalf("phases = %v, want %q", phases, want)
		}
	}
	if values["mpq_prepare_seconds_count"] != 3 {
		t.Fatalf("mpq_prepare_seconds_count = %v, want 3", values["mpq_prepare_seconds_count"])
	}
}

// TestPickTelemetryPersistsAcrossRestart is the serve-level slice of
// the telemetry round trip: picks recorded through a server survive a
// flush and reload with the same distribution.
func TestPickTelemetryPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	tel, err := obs.OpenTelemetry(dir, obs.TelemetryOptions{Buckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 1, Telemetry: tel})
	res, err := s.Prepare(context.Background(), testTemplate(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range testPoints {
		if _, err := s.Pick(context.Background(), PickRequest{Key: res.Key, Point: x}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := tel.Flush(); err != nil {
		t.Fatal(err)
	}
	snap, ok := tel.Snapshot(res.Key)
	if !ok || snap.Recorded != int64(len(testPoints)) {
		t.Fatalf("snapshot = %+v ok=%v", snap, ok)
	}

	re, err := obs.OpenTelemetry(dir, obs.TelemetryOptions{Buckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := re.Snapshot(res.Key)
	if !ok {
		t.Fatal("reload lost the server's histogram")
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("reloaded snapshot differs:\n got %+v\nwant %+v", got, snap)
	}
}
