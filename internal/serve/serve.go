// Package serve implements the optimizer-as-a-service layer of the MPQ
// workflow (Figure 2 of the paper, run as a long-lived process): query
// templates are optimized once ("Prepare"), their Pareto plan sets are
// persisted through the store format and cached in memory, and run-time
// requests ("Pick") select a plan for concrete parameter values and a
// preference policy against the cached set — without re-running the
// optimizer.
//
// The server owns a pool of solver-equipped workers (the optimizer is
// reentrant since the geometry layer was split into a shared immutable
// Config and per-worker Solvers), a memory-accounted plan-set cache
// keyed by a hash of schema, cost-model configuration and optimizer
// configuration, and a bounded request queue providing backpressure:
// when the queue is full, requests fail fast with ErrQueueFull instead
// of piling up. See DESIGN.md, "Serving layer".
//
// The fleet subsystem (mpq/internal/fleet) extends one server to a
// fleet: Options.CacheBytes bounds the cache with size-aware LRU
// eviction (evicted plan sets reload transparently at pick time),
// Options.Shared consults and feeds a shared plan-set store so sibling
// servers never recompute each other's templates, Options.Peers
// fetches prepared documents from sibling processes over HTTP before
// optimizing, Options.MaxConcurrentPrepares keeps expensive Prepares
// from monopolizing the pool, and Options.DonateWorkers lends idle
// pool workers to in-flight Prepares' split jobs. See DESIGN.md,
// "Fleet serving".
//
// With Options.RefineLadder set, Prepare is anytime: a
// deadline-bounded request for an uncached template computes a coarse
// ε-approximate generation that fits its budget, serves it
// regret-certified, and schedules background refinement through the
// ladder down to the template's resolved factor; each finished
// generation atomically replaces the previous one in the cache, the
// persistence directory, the shared store, and the peer-visible
// document endpoint. See DESIGN.md, "Anytime Prepare & generation
// refinement".
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpq/internal/catalog"
	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/faultfs"
	"mpq/internal/fleet"
	"mpq/internal/geometry"
	"mpq/internal/index"
	"mpq/internal/obs"
	"mpq/internal/pwl"
	"mpq/internal/refine"
	"mpq/internal/region"
	"mpq/internal/selection"
	"mpq/internal/store"
	"mpq/internal/workload"
)

// Errors returned by the server.
var (
	// ErrQueueFull reports that the bounded request queue is at
	// capacity; the caller should retry later (backpressure).
	ErrQueueFull = errors.New("serve: request queue full")
	// ErrServerClosed reports a request submitted after Close.
	ErrServerClosed = errors.New("serve: server closed")
	// ErrUnknownPlanSet reports a Pick for a key no Prepare produced.
	ErrUnknownPlanSet = errors.New("serve: unknown plan-set key")
	// ErrInternal wraps server-side failures (persistence, reload) that
	// are not the client's fault, so transports can map them to 5xx.
	ErrInternal = errors.New("serve: internal error")
)

// Options configures a Server.
type Options struct {
	// Workers is the size of the solver pool: the number of goroutines
	// draining the request queue, each owning a forked geometry solver.
	// Zero selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds the request queue; zero selects 8×Workers.
	// Submissions beyond the bound fail with ErrQueueFull.
	QueueDepth int
	// Optimizer is the optimization configuration used by Prepare. Its
	// Context field is ignored (each pool worker supplies its own
	// solver); its Workers field is the intra-query parallelism of one
	// Prepare and defaults to 1, since the pool already runs requests
	// concurrently. The configuration is part of the cache key.
	Optimizer core.Options
	// Solver is the shared immutable geometry configuration of the
	// pool; zero fields take the defaults.
	Solver geometry.Config
	// Dir, when non-empty, persists every prepared plan set as
	// <key>.json in this directory and serves cache misses from it
	// before optimizing — the embedded-SQL deployment model where plan
	// sets survive server restarts.
	Dir string
	// Index enables the point-location pick index: Prepare builds one
	// over each plan set's parameter space (persisted with the document
	// as the store's v3 index stanza) and Picks resolve the candidate
	// subset by cell lookup. Plan sets loaded without a persisted index
	// are indexed on load. The full linear candidate scan remains the
	// verified fallback — for servers with the knob off, and for points
	// outside an index's box — and returns byte-identical results.
	Index bool
	// IndexOptions tunes the index build; zero fields take the index
	// package defaults, except Workers, which defaults to the pool size
	// (the build parallelizes across the solver pool's width).
	IndexOptions index.Options
	// CacheBytes bounds the in-memory plan-set cache: every cached
	// entry is charged its serialized document size plus its pick
	// index's footprint, and least-recently-used entries are evicted
	// when the total exceeds the budget. Evicted plan sets are not
	// forgotten — a Pick for an evicted key transparently reloads the
	// document from Dir, the shared store, or a peer. Zero keeps the
	// historical unbounded cache. Entries in use are pinned, so the
	// resident total can transiently exceed the budget.
	CacheBytes int64
	// Shared, when non-nil, is the fleet's shared plan-set store:
	// Prepare consults it (after the in-memory cache and Dir) before
	// optimizing, and publishes every document it computes or fetches
	// from a peer, so a fleet of servers over one store computes each
	// template once. Close flushes it.
	Shared fleet.SharedStore
	// Peers, when non-nil, is consulted after Shared and before
	// computing: sibling servers expose their prepared documents under
	// fleet.PlanSetPath, and a fetched document is re-published to
	// Shared. The fetch-vs-compute race is covered by the per-key
	// singleflight: one request fetches or computes, the rest wait.
	Peers *fleet.PeerClient
	// MaxConcurrentPrepares caps how many Prepares may occupy pool
	// workers at once (FIFO beyond the cap). Requests for one template
	// already collapse onto a single computation via the per-key
	// singleflight; the cap keeps *distinct* expensive templates from
	// starving Picks out of the pool. Zero means no cap.
	MaxConcurrentPrepares int
	// DonateWorkers lends idle pool workers to in-flight Prepares'
	// intra-mask split jobs (elastic intra-query parallelism): when the
	// request queue is empty and workers are idle, an optimizing
	// Prepare may split wide table sets across them. Results are
	// byte-identical with or without donation.
	DonateWorkers bool
	// RefineLadder enables anytime Prepare: a descending sequence of
	// approximation factors (e.g. 0.5, 0.1). A deadline-bounded Prepare
	// of an uncached template computes the coarsest ladder generation
	// within the caller's budget, serves it regret-certified (every
	// generation honors the (1+ε) contract), and refines through the
	// remaining steps down to the template's resolved ε on a background
	// executor; each finished generation atomically replaces the
	// previous one in the cache, Dir, the shared store, and the
	// peer-visible document. Prepares without a deadline compute the
	// final generation directly. The ladder must be strictly descending
	// with every step in [0, 1); New panics on an invalid one (a
	// configuration bug, caught at construction like an invalid listen
	// address).
	RefineLadder []float64
	// BaseContext, when non-nil, is the server lifecycle context
	// background refinement runs under: cancelling it aborts the
	// in-flight refinement job at the optimizer's checkpoints and
	// drains the refinement queue, exactly like Close. Nil defaults to
	// an uncancellable root (refinement then stops only at Close).
	BaseContext context.Context
	// FS is the filesystem the Dir persistence reads and writes through
	// (nil = the real one) — the fault-injection seam for crash and
	// I/O-error tests. The shared store carries its own (see
	// fleet.NewDirStoreFS).
	FS faultfs.FS
	// Trace, when non-nil, records every Prepare flight that reaches the
	// load-or-optimize pipeline into the ring: per-phase timings
	// (admission wait, queue wait, source lookup, optimize, index build,
	// save) plus the document's source. Instrumented rings additionally
	// feed per-phase latency histograms (see obs.TraceRing.Instrument).
	// Nil disables tracing — the hot path pays one nil check.
	Trace *obs.TraceRing
	// Telemetry, when non-nil, records the parameter points Pick and
	// PickBatch actually serve, per plan-set key, into bounded
	// per-dimension histograms (the recording half of workload-driven
	// re-optimization). Recording is atomic adds behind a sampling knob;
	// persistence happens only on Telemetry.Flush, never on the pick
	// path. Nil disables recording.
	Telemetry *obs.Telemetry
}

// Template describes a query template to prepare: either an explicit
// schema or a workload-generator configuration, plus the cost-model
// configuration.
type Template struct {
	// Schema, when non-nil, is the query to optimize.
	Schema *catalog.Schema
	// Workload generates the schema when Schema is nil.
	Workload workload.Config
	// Cloud configures the cost model; nil selects the defaults.
	Cloud *cloud.Config
	// Epsilon, when non-nil, overrides the server's default
	// approximation factor (Options.Optimizer.Epsilon) for this
	// template: 0 requests the exact Pareto set, ε > 0 an ε-approximate
	// frontier. The factor is part of the plan-set key, so exact and
	// approximate tiers of the same template coexist in one cache, one
	// shared store, and one fleet without ever answering for each
	// other.
	Epsilon *float64
}

func (t Template) resolve() (*catalog.Schema, cloud.Config, error) {
	cfg := cloud.DefaultConfig()
	if t.Cloud != nil {
		cfg = *t.Cloud
	}
	if t.Schema != nil {
		return t.Schema, cfg, nil
	}
	schema, err := workload.Generate(t.Workload)
	if err != nil {
		return nil, cloud.Config{}, err
	}
	return schema, cfg, nil
}

// PrepareResult reports the outcome of a Prepare request.
type PrepareResult struct {
	// Key identifies the cached plan set for subsequent Picks.
	Key string
	// NumPlans is the Pareto-plan-set size.
	NumPlans int
	// Cached reports whether the set was served without optimizing:
	// from the in-memory cache, a persisted Options.Dir document, the
	// shared store, or a peer.
	Cached bool
	// Duration is the optimization time spent by this request (zero on
	// cache hits).
	Duration time.Duration
	// Stats is the optimization's work summary (plans created, LPs
	// solved, scheduler behavior); the zero value on cache, store, and
	// peer hits. The counts are deterministic for a given template and
	// configuration, which the fleet benchmark's regression gate relies
	// on.
	Stats core.Stats
	// Epsilon is the approximation factor of the generation this
	// request served; on an anytime server it may be coarser than the
	// template's resolved factor while refinement is outstanding.
	// Generation is its index in the template's effective refinement
	// ladder (0 = coarsest), and Final reports whether it is the
	// resolved factor — false means background refinement is running
	// and a later Pick may observe a finer generation.
	Epsilon    float64
	Generation int
	Final      bool
}

// Policy selects the run-time preference policy of a Pick request.
type Policy string

// The selection policies of the paper's scenarios.
const (
	// PolicyFrontier returns every Pareto-optimal choice at the point,
	// sorted lexicographically by cost (the tradeoff visualization of
	// Scenario 1).
	PolicyFrontier Policy = "frontier"
	// PolicyWeightedSum minimizes Weights·cost.
	PolicyWeightedSum Policy = "weighted"
	// PolicyMinimizeSubjectTo minimizes metric Minimize under Bounds.
	PolicyMinimizeSubjectTo Policy = "bound"
	// PolicyLexicographic minimizes metrics in Order priority.
	PolicyLexicographic Policy = "lex"
)

// PickRequest selects a plan from a prepared plan set at a parameter
// point.
type PickRequest struct {
	// Key is the plan-set key returned by Prepare.
	Key string
	// Point is the concrete parameter vector.
	Point geometry.Vector
	// Policy selects the preference policy; the zero value means
	// PolicyFrontier.
	Policy Policy
	// Weights configures PolicyWeightedSum.
	Weights []float64
	// Minimize and Bounds configure PolicyMinimizeSubjectTo.
	Minimize int
	Bounds   []selection.Bound
	// Order configures PolicyLexicographic.
	Order []int
}

// PickResult is the selected plan (or, for PolicyFrontier, every
// Pareto-optimal plan) with cost vectors at the requested point.
type PickResult struct {
	// Metrics names the cost components.
	Metrics []string
	// Choices holds the selected plans; exactly one for the
	// single-plan policies.
	Choices []selection.Choice
	// Epsilon is the approximation factor of the generation the pick
	// was served from, Generation its index in the template's effective
	// refinement ladder, and Final whether it is the template's
	// resolved factor. The entry is pinned for the whole request, so
	// one pick observes exactly one generation even while a refinement
	// swap lands concurrently.
	Epsilon    float64
	Generation int
	Final      bool
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	// Prepares counts completed Prepare requests; PrepareHits the
	// subset served from the cache, PrepareDiskHits the documents
	// loaded from Options.Dir (Prepare restarts and pick-time reloads
	// alike).
	Prepares        int64
	PrepareHits     int64
	PrepareDiskHits int64
	// Picks counts completed pick *points*: one per Pick request plus
	// one per point of every PickBatch request (not one per batch).
	Picks int64
	// Rejected counts requests refused with ErrQueueFull.
	Rejected int64
	// Index reports the pick-index behavior (build work, cell shape,
	// and how many pick points the index served versus the linear-scan
	// fallback).
	Index IndexStats
	// CachedPlanSets is the current cache size (resident entries).
	CachedPlanSets int
	// Cache is the memory-accounted plan-set cache's accounting:
	// resident/admitted/evicted bytes and entries, re-admissions, pins.
	// Admitted − evicted = resident at every quiescent point.
	Cache fleet.CacheStats
	// SharedHits counts documents served from Options.Shared (Prepare
	// hits and pick-time reloads); PeerHits those fetched from
	// Options.Peers; SharedPuts the documents this server published to
	// the shared store.
	SharedHits int64
	PeerHits   int64
	SharedPuts int64
	// Reloads counts evicted plan sets transparently reloaded at pick
	// time.
	Reloads int64
	// Cancellations counts requests that ended with context.Canceled
	// (the caller gave up); DeadlineExpiries those that ended with
	// context.DeadlineExceeded. Both are counted once per failed
	// Prepare/Pick/PickBatch call, at the API boundary.
	Cancellations    int64
	DeadlineExpiries int64
	// PeerRetries and PeerBreakerTrips mirror the peer client's
	// resilience counters (fleet.PeerStats); QuarantinedBlobs mirrors
	// the shared store's corrupt-blob quarantine counter. All zero when
	// the corresponding backend is not configured.
	PeerRetries      int64
	PeerBreakerTrips int64
	QuarantinedBlobs int64
	// Admission reports the Prepare admission controller (running,
	// queued, waited, wait time) when MaxConcurrentPrepares is set.
	Admission fleet.AdmissionStats
	// DonatedTasks counts idle-worker stints donated to in-flight
	// Prepares' split jobs (Options.DonateWorkers); DonatedMasks the
	// whole ready masks those stints planned (mask-level donation
	// raises the effective worker count of an in-flight optimization
	// mid-run).
	DonatedTasks int64
	DonatedMasks int64
	// Refine reports the anytime-refinement subsystem
	// (Options.RefineLadder): background generation upgrades and the
	// coarse traffic served while they were outstanding.
	Refine RefineStats
	// Geometry aggregates the solver work of all pool workers.
	Geometry geometry.Stats
	// PipelineBusy sums the per-worker busy time inside the optimizer's
	// dependency scheduler across all Prepares that ran an optimization;
	// PipelineCapacity sums the corresponding scheduler wall-clock times
	// multiplied by the worker count each run used.
	PipelineBusy     time.Duration
	PipelineCapacity time.Duration
	// PipelineUtilization is PipelineBusy / PipelineCapacity: the mean
	// worker utilization of the optimizer's dependency scheduler over
	// all optimizations this server performed (1.0 = perfectly
	// pipelined; 0 when nothing was optimized yet).
	PipelineUtilization float64
	// SplitJobs counts table sets planned with intra-mask split
	// parallelism across all Prepares.
	SplitJobs int64
}

// RefineStats is the anytime-refinement slice of the server counters
// (all zero unless Options.RefineLadder is set).
type RefineStats struct {
	// Scheduled counts ladder steps enqueued for background
	// refinement; Completed the jobs whose generation was computed (or
	// fetched) and swapped in; Cancelled the jobs aborted by shutdown,
	// lifecycle-context cancellation, or a failed predecessor in their
	// chain; Failed the jobs whose computation failed; Skipped the jobs
	// obsoleted by an already-finer resident generation (typically a
	// sibling refined first).
	Scheduled int64
	Completed int64
	Cancelled int64
	Failed    int64
	Skipped   int64
	// Pending is the number of queued refinement jobs and Running is 1
	// while one executes (gauges).
	Pending int64
	Running int64
	// CoarsePrepares counts deadline-bounded Prepares answered with a
	// freshly computed coarse generation; Swaps the refined generations
	// atomically swapped into the serve cache; CoarsePicks the pick
	// points served from a non-final generation.
	CoarsePrepares int64
	Swaps          int64
	CoarsePicks    int64
}

// IndexStats is the pick-index slice of the server counters.
type IndexStats struct {
	// IndexedPlanSets counts cached plan sets carrying a built index;
	// Leaves and LeafCandidates sum their leaf counts and per-leaf
	// candidate ids, AvgLeafCandidates is their ratio (candidates a
	// cell lookup scans on average, versus the full set for a linear
	// scan).
	IndexedPlanSets   int
	Leaves            int64
	LeafCandidates    int64
	AvgLeafCandidates float64
	// Builds counts index builds this server performed (documents
	// loaded with a persisted index stanza need none); BuildTime sums
	// their wall-clock durations.
	Builds    int64
	BuildTime time.Duration
	// IndexPicks counts pick points answered through a cell lookup;
	// FallbackPicks those answered by the full linear scan (index off,
	// no index on the set, or point outside the index box).
	IndexPicks    int64
	FallbackPicks int64
	// BatchRequests counts PickBatch requests; BatchPoints the points
	// they carried (each batch point is also counted in Stats.Picks).
	BatchRequests int64
	BatchPoints   int64
}

// Server is a long-lived optimizer service. Create with New, release
// with Close. All methods are safe for concurrent use.
type Server struct {
	opts      Options
	fs        faultfs.FS
	queue     chan *job
	wg        sync.WaitGroup
	cache     *fleet.Cache
	admission *fleet.Admission
	busy      atomic.Int64 // pool workers currently inside a job

	mu        sync.RWMutex
	closed    bool
	inflight  map[string]*inflightPrepare
	reloading map[string]*inflightReload
	stats     Stats

	// Anytime refinement (Options.RefineLadder): the background
	// executor, its dedicated solver-equipped worker (serial use on the
	// refiner goroutine only), and the per-key refinement state.
	refiner      *refine.Refiner
	refineWorker *worker
	refineMu     sync.Mutex
	refineStates map[string]*refineState
}

// refineState is the per-key record the refinement subsystem needs to
// recompute a template finer: the resolved schema and cost-model
// configuration, and the template-effective ladder (the configured
// steps coarser than the template's resolved ε, then the resolved ε
// itself as the final generation).
type refineState struct {
	schema   *catalog.Schema
	cloudCfg cloud.Config
	ladder   refine.Ladder
}

// entry is a cached plan set with its precomputed selection
// candidates. On fleet-configured servers (CacheBytes, Shared, or
// Peers set) doc is the exact serialized document the entry
// round-tripped through — served verbatim to peers and the basis of
// the accounted footprint; plain in-memory servers drop it after
// deserializing, keeping the historical memory profile. With the pick
// index enabled, idx is the point-location index and leafCands the
// per-leaf candidate subsets (piece-restricted cost views) Picks scan
// instead of candidates.
type entry struct {
	set        *store.PlanSet
	doc        []byte
	candidates []selection.Candidate
	idx        *index.Index
	leafCands  [][]selection.Candidate
	// telLo/telHi is the parameter-space bounding box pick-point
	// telemetry bins against, computed once at entry construction (only
	// when telemetry is enabled); nil when the space is unbounded.
	telLo, telHi []float64
}

// footprint is the bytes the memory-accounted cache charges for the
// entry: the serialized document plus the pick index structure. The
// deserialized plan set and the leaf views share most of their memory
// with what these two measure.
func (e *entry) footprint() int64 {
	b := int64(len(e.doc))
	if e.idx != nil {
		b += e.idx.MemBytes()
	}
	return b
}

// lookup resolves the candidate subset for a pick point: the leaf cell
// of the index when available, the full linear-scan set otherwise.
func (e *entry) lookup(x geometry.Vector) (cands []selection.Candidate, viaIndex bool) {
	if e.idx != nil {
		if leaf, _, ok := e.idx.Locate(x); ok {
			return e.leafCands[leaf], true
		}
	}
	return e.candidates, false
}

// inflightPrepare deduplicates concurrent Prepares of one key: the
// first request optimizes (or fetches), later ones wait for its
// outcome. It is also the fleet's fetch-vs-compute singleflight: the
// winner consults the shared store and the peers before optimizing, so
// one key never has a racing fetch and computation in one process.
type inflightPrepare struct {
	done chan struct{}
	res  PrepareResult
	err  error
}

// inflightReload deduplicates pick-time reloads of an evicted key.
type inflightReload struct {
	done chan struct{}
	e    *entry
	err  error
}

// job is one queued request; run executes on a pool worker. state
// resolves the abandonment race: a waiter whose context fires while
// the job is still queued flips pending→abandoned and leaves without
// the work ever starting; the worker flips pending→running before
// executing, and a waiter that loses that race waits for completion
// (the work is already burning a worker — its result is kept).
type job struct {
	run   func(w *worker)
	done  chan struct{}
	state atomic.Int32 // 0 pending, 1 running, 2 abandoned
}

const (
	jobPending   = 0
	jobRunning   = 1
	jobAbandoned = 2
)

// worker is one pool goroutine with its forked solver.
type worker struct {
	solver *geometry.Solver
}

// New starts a server with the given options. A zero Optimizer
// configuration selects core.DefaultOptions (the paper's refinements).
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Optimizer == (core.Options{}) {
		opts.Optimizer = core.DefaultOptions()
	}
	// Normalize the solver configuration up front: equivalent
	// configurations (zero fields vs explicit defaults) must produce
	// the same pool behavior and the same cache keys.
	opts.Solver = geometry.NewSolver(opts.Solver).Config
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 8 * opts.Workers
	}
	if opts.IndexOptions.Workers <= 0 {
		// Index builds parallelize across the pool's width (the building
		// worker's siblings are idle while its Prepare holds them off).
		opts.IndexOptions.Workers = opts.Workers
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	s := &Server{
		opts:      opts,
		fs:        fsys,
		queue:     make(chan *job, opts.QueueDepth),
		cache:     fleet.NewCache(opts.CacheBytes),
		admission: fleet.NewAdmission(opts.MaxConcurrentPrepares),
		inflight:  make(map[string]*inflightPrepare),
		reloading: make(map[string]*inflightReload),
	}
	if len(opts.RefineLadder) > 0 {
		if err := refine.Ladder(opts.RefineLadder).Validate(); err != nil {
			panic(err)
		}
		base := opts.BaseContext
		if base == nil {
			base = context.Background() //mpq:ctxroot no lifecycle context supplied; background refinement then stops only at Close
		}
		s.refineWorker = &worker{solver: geometry.NewSolver(opts.Solver)}
		s.refineStates = make(map[string]*refineState)
		s.refiner = refine.New(base, s.runRefineJob)
	}
	for i := 0; i < opts.Workers; i++ {
		w := &worker{solver: geometry.NewSolver(opts.Solver)}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				if !j.state.CompareAndSwap(jobPending, jobRunning) {
					// Abandoned while queued: the waiter is gone, skip
					// the work and retire the job.
					close(j.done)
					continue
				}
				s.busy.Add(1)
				j.run(w)
				s.busy.Add(-1)
				close(j.done)
			}
		}()
	}
	return s
}

// Close stops background refinement, drains the queue, stops the
// workers, and flushes the shared store. Requests submitted after Close
// fail with ErrServerClosed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// Refinement retires first: the in-flight job aborts at the
	// optimizer's next checkpoint and its donated stints return to the
	// pool, so the queue drain below cannot deadlock on a donation and
	// no refinement goroutine outlives Close (queued jobs count as
	// cancelled, never silently lost).
	if s.refiner != nil {
		s.refiner.Close()
	}
	s.mu.Lock()
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	if s.opts.Shared != nil {
		// Every Put is already durable; this is the final best-effort
		// sync of the store's directory entry on the way out.
		_ = s.opts.Shared.Flush()
	}
}

// submit enqueues a request, enforcing the queue bound. The send
// happens under the read lock so it cannot race Close (which closes
// the channel under the write lock).
func (s *Server) submit(j *job) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrServerClosed
	}
	select {
	case s.queue <- j:
		s.mu.RUnlock()
		return nil
	default:
		s.mu.RUnlock()
		s.mu.Lock()
		s.stats.Rejected++
		s.mu.Unlock()
		return ErrQueueFull
	}
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	st := s.stats
	s.mu.RUnlock()
	st.Cache = s.cache.Stats()
	st.CachedPlanSets = st.Cache.ResidentEntries
	st.Admission = s.admission.Stats()
	if q, ok := s.opts.Shared.(interface{ Quarantined() int64 }); ok {
		st.QuarantinedBlobs = q.Quarantined()
	}
	if s.opts.Peers != nil {
		ps := s.opts.Peers.Stats()
		st.PeerRetries = ps.Retries
		st.PeerBreakerTrips = ps.BreakerTrips
	}
	if s.refiner != nil {
		rst := s.refiner.Stats()
		st.Refine.Scheduled = rst.Scheduled
		st.Refine.Completed = rst.Completed
		st.Refine.Cancelled = rst.Cancelled
		st.Refine.Failed = rst.Failed
		st.Refine.Skipped = rst.Skipped
		st.Refine.Pending = rst.Pending
		st.Refine.Running = rst.Running
	}
	if st.PipelineCapacity > 0 {
		st.PipelineUtilization = float64(st.PipelineBusy) / float64(st.PipelineCapacity)
		if st.PipelineUtilization > 1 {
			st.PipelineUtilization = 1
		}
	}
	s.cache.Range(func(_ string, v any) {
		e := v.(*entry)
		if e.idx == nil {
			return
		}
		st.Index.IndexedPlanSets++
		st.Index.Leaves += int64(e.idx.Leaves())
		st.Index.LeafCandidates += e.idx.LeafCandidateTotal()
	})
	if st.Index.Leaves > 0 {
		st.Index.AvgLeafCandidates = float64(st.Index.LeafCandidates) / float64(st.Index.Leaves)
	}
	return st
}

// PlanSet returns the cached plan set for a key, for inspection. It
// does not reload evicted entries.
func (s *Server) PlanSet(key string) (*store.PlanSet, bool) {
	v, ok := s.cache.Get(key, false)
	if !ok {
		return nil, false
	}
	return v.(*entry).set, true
}

// retainDocs reports whether cached entries keep their serialized
// document bytes: required for footprint accounting (CacheBytes), for
// serving peers and re-publishing (Shared), and on servers that fetch
// from peers (symmetric fleets list every member in every member's
// peer set, so a fetcher is usually also a provider). Plain in-memory
// servers drop the bytes after deserializing.
func (s *Server) retainDocs() bool {
	return s.opts.CacheBytes > 0 || s.opts.Shared != nil || s.opts.Peers != nil
}

// Document returns the serialized plan-set document for a key — the
// bytes a peer fetching through fleet.PlanSetPath receives. It serves
// from the in-memory cache, the Options.Dir document, or the shared
// store, and never computes or consults peers itself (peer chains
// must not turn one fetch into a fleet-wide cascade). Keys that do
// not have the planSetKey shape are unknown by construction — in
// particular, a path-traversal "key" never reaches the filesystem.
func (s *Server) Document(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlanSet, key)
	}
	if v, ok := s.cache.Get(key, false); ok {
		if doc := v.(*entry).doc; doc != nil {
			return doc, nil
		}
	}
	if s.opts.Dir != "" {
		if doc, err := s.fs.ReadFile(s.docPath(key)); err == nil {
			return doc, nil
		}
	}
	if s.opts.Shared != nil {
		if doc, ok, err := s.opts.Shared.Get(key); err == nil && ok {
			return doc, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownPlanSet, key)
}

// Key computes the plan-set cache key of a template under this server's
// optimizer configuration without preparing it: a hash of the schema,
// the cost-model configuration and the optimizer configuration (plus
// the store format version, since the cached sets round-trip through
// it).
func (s *Server) Key(tpl Template) (string, error) {
	schema, cloudCfg, err := tpl.resolve()
	if err != nil {
		return "", err
	}
	epsilon, err := s.resolveEpsilon(tpl)
	if err != nil {
		return "", err
	}
	return planSetKey(schema, cloudCfg, s.opts.Optimizer, s.opts.Solver, epsilon)
}

// resolveEpsilon returns the approximation factor a template prepares
// under: its own override when set, the server default otherwise.
func (s *Server) resolveEpsilon(tpl Template) (float64, error) {
	epsilon := s.opts.Optimizer.Epsilon
	if tpl.Epsilon != nil {
		epsilon = *tpl.Epsilon
	}
	if epsilon < 0 || math.IsNaN(epsilon) {
		return 0, fmt.Errorf("serve: invalid epsilon %v", epsilon)
	}
	return epsilon, nil
}

// planSetKey hashes everything that determines a prepared plan set:
// the schema content, the cost-model configuration, the optimizer
// configuration that changes results (region refinements, Cartesian
// postponement, and the approximation factor — the worker count does
// not, by the determinism guarantee of the parallel wavefront), the
// geometry tolerances (which steer pruning decisions), and the store
// format version the cached sets round-trip through. The epsilon field
// is what lets precision tiers share one fleet: the same template at a
// different ε is simply a different key.
func planSetKey(schema *catalog.Schema, cloudCfg cloud.Config, opts core.Options, solverCfg geometry.Config, epsilon float64) (string, error) {
	keyDoc := struct {
		Format            int
		Schema            *catalog.Schema
		Cloud             cloud.Config
		Region            region.Options
		PostponeCartesian bool
		Epsilon           float64
		Solver            geometry.Config
	}{
		Format:            store.FormatVersion,
		Schema:            schema,
		Cloud:             cloudCfg,
		Region:            opts.Region,
		PostponeCartesian: opts.PostponeCartesian,
		Epsilon:           epsilon,
		Solver:            solverCfg,
	}
	b, err := json.Marshal(keyDoc)
	if err != nil {
		return "", fmt.Errorf("serve: hashing template: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16]), nil
}

// orBackground is the server's single sanctioned context root: every
// public entry point tolerates a nil ctx from legacy callers by
// defaulting to an uncancellable Background at the API boundary.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background() //mpq:ctxroot nil ctx from legacy callers defaults to an uncancellable root at the API boundary
	}
	return ctx
}

// Prepare optimizes a template (unless its plan set is already cached),
// persists the plan set through the store format, and caches the
// deserialized set for Picks. Concurrent Prepares of the same template
// are deduplicated: one optimizes, the rest wait for its result. ctx
// cancels or deadline-bounds the request: a Prepare abandoned while
// queued never starts, and one abandoned mid-optimization stops at the
// scheduler's next checkpoint, releasing its worker, admission slot,
// and singleflight key promptly — without poisoning concurrent
// requests for the same key, which simply retry the flight.
func (s *Server) Prepare(ctx context.Context, tpl Template) (PrepareResult, error) {
	ctx = orBackground(ctx)
	schema, cloudCfg, err := tpl.resolve()
	if err != nil {
		return PrepareResult{}, err
	}
	epsilon, err := s.resolveEpsilon(tpl)
	if err != nil {
		return PrepareResult{}, err
	}
	key, err := planSetKey(schema, cloudCfg, s.opts.Optimizer, s.opts.Solver, epsilon)
	if err != nil {
		return PrepareResult{}, err
	}
	res, err := s.prepareKey(ctx, key, schema, cloudCfg, epsilon)
	if err != nil {
		s.noteCtxFailure(err)
	}
	return res, err
}

// prepareKey is the cache/singleflight front of Prepare. It loops:
// when the flight this request waited on was cancelled by *its* owner,
// a waiter whose own context is still live must not inherit that
// failure — it retries and may become the new flight's winner.
func (s *Server) prepareKey(ctx context.Context, key string, schema *catalog.Schema, cloudCfg cloud.Config, epsilon float64) (PrepareResult, error) {
	for {
		if err := ctx.Err(); err != nil {
			return PrepareResult{}, err
		}
		if v, ok := s.cache.Get(key, false); ok {
			s.mu.Lock()
			s.stats.Prepares++
			s.stats.PrepareHits++
			s.mu.Unlock()
			return s.hitResult(key, v.(*entry)), nil
		}
		s.mu.Lock()
		if v, ok := s.cache.Get(key, false); ok {
			// A concurrent Prepare's winner inserted between our lock-free
			// cache miss and taking the mutex (insert happens before its
			// inflight entry is removed, so without this re-check we would
			// find the inflight table empty and optimize the key again).
			s.stats.Prepares++
			s.stats.PrepareHits++
			s.mu.Unlock()
			return s.hitResult(key, v.(*entry)), nil
		}
		if fl, ok := s.inflight[key]; ok {
			// Another request is already optimizing this template; wait
			// for it instead of duplicating the work — but not past our
			// own context.
			s.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return PrepareResult{}, ctx.Err()
			}
			if fl.err != nil {
				if isCtxErr(fl.err) {
					// The winner's caller gave up, not the computation:
					// our context is still live, so run our own flight.
					continue
				}
				return PrepareResult{}, fl.err
			}
			res := fl.res
			res.Cached = true
			res.Duration = 0
			res.Stats = core.Stats{}
			s.mu.Lock()
			s.stats.Prepares++
			s.stats.PrepareHits++
			s.mu.Unlock()
			return res, nil
		}
		fl := &inflightPrepare{done: make(chan struct{})}
		s.inflight[key] = fl
		s.mu.Unlock()

		res, err := s.runPrepare(ctx, key, schema, cloudCfg, epsilon)
		fl.res, fl.err = res, err
		s.mu.Lock()
		delete(s.inflight, key)
		if err == nil {
			s.stats.Prepares++
		}
		s.mu.Unlock()
		close(fl.done)
		return res, err
	}
}

// hitResult builds the PrepareResult of a cache hit, annotated with
// the resident generation — which may still be coarse while background
// refinement is outstanding. A coarse hit also re-nudges the refiner:
// the Schedule is deduplicated when the chain is still queued, and it
// resurrects a chain dropped by an earlier failure.
func (s *Server) hitResult(key string, e *entry) PrepareResult {
	res := PrepareResult{Key: key, NumPlans: len(e.set.Plans), Cached: true}
	s.annotate(&res, key, e)
	if !res.Final {
		s.ensureRefinement(key, e)
	}
	return res
}

// annotate stamps a Prepare result with the generation it served.
func (s *Server) annotate(res *PrepareResult, key string, e *entry) {
	res.Epsilon = e.set.Epsilon
	res.Generation, res.Final = s.generationOf(key, e.set.Epsilon)
}

// generationOf maps an entry's approximation factor to its index in
// the key's effective refinement ladder. Keys that never took the
// anytime path have a single, final generation.
func (s *Server) generationOf(key string, eps float64) (gen int, final bool) {
	s.refineMu.Lock()
	st, ok := s.refineStates[key]
	s.refineMu.Unlock()
	if !ok {
		return 0, true
	}
	for i, v := range st.ladder {
		if v == eps {
			return i, i == len(st.ladder)-1
		}
	}
	// Not a ladder member (e.g. a finer document published by a
	// sibling running a different ladder): final iff at or below the
	// template's resolved factor.
	return 0, eps <= st.ladder[len(st.ladder)-1]
}

// ensureRefinement schedules a key's outstanding refinement chain —
// idempotent (the refiner dedupes queued keys) and cheap.
func (s *Server) ensureRefinement(key string, e *entry) {
	s.refineMu.Lock()
	st, ok := s.refineStates[key]
	s.refineMu.Unlock()
	if !ok {
		return
	}
	s.scheduleRefine(st.ladder.Jobs(key, e.set.Epsilon))
}

// scheduleRefine enqueues background refinement jobs.
func (s *Server) scheduleRefine(jobs []refine.Job) {
	if s.refiner == nil || len(jobs) == 0 {
		return
	}
	s.refiner.Schedule(jobs)
}

// isCtxErr reports whether err is (or wraps) a context cancellation or
// deadline expiry.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// noteCtxFailure counts a request that failed on its context, once, at
// the API boundary.
func (s *Server) noteCtxFailure(err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.mu.Lock()
		s.stats.DeadlineExpiries++
		s.mu.Unlock()
	case errors.Is(err, context.Canceled):
		s.mu.Lock()
		s.stats.Cancellations++
		s.mu.Unlock()
	}
}

// runPrepare executes the load-or-optimize pipeline on a pool worker,
// under the admission controller: at most MaxConcurrentPrepares
// Prepares occupy workers at once, FIFO beyond that, so a burst of
// expensive templates cannot starve Picks out of the pool. A request
// whose context fires while queued (admission FIFO or request queue)
// gives up its place without leaking the slot.
func (s *Server) runPrepare(ctx context.Context, key string, schema *catalog.Schema, cloudCfg cloud.Config, epsilon float64) (PrepareResult, error) {
	tr := s.opts.Trace.Start("prepare", key)
	release, err := s.admission.Acquire(ctx)
	if err != nil {
		tr.Finish(err)
		return PrepareResult{}, err
	}
	tr.Phase("admission_wait")
	defer release()
	var res PrepareResult
	var jerr error
	err = s.run(ctx, func(w *worker) {
		tr.Phase("queue_wait")
		res, jerr = s.prepareOn(ctx, w, key, schema, cloudCfg, epsilon, tr)
	})
	if err != nil {
		tr.Finish(err)
		return PrepareResult{}, err
	}
	tr.Finish(jerr)
	return res, jerr
}

// run submits fn to the pool and waits for it, merging the worker's
// solver counters into the server stats afterwards. When ctx fires
// while the job is still queued, the job is abandoned (the pool skips
// it) and ctx's error returned; once fn is running, run waits it out —
// fn observes ctx itself where it matters (the optimizer's
// checkpoints) and its completed result is kept.
func (s *Server) run(ctx context.Context, fn func(w *worker)) error {
	j := &job{done: make(chan struct{})}
	j.run = func(w *worker) {
		before := w.solver.Stats
		fn(w)
		diff := w.solver.Stats
		diff.Sub(before)
		s.mu.Lock()
		s.stats.Geometry.Add(diff)
		s.mu.Unlock()
	}
	if err := s.submit(j); err != nil {
		return err
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		if j.state.CompareAndSwap(jobPending, jobAbandoned) {
			return ctx.Err()
		}
		// Already running; the worker finishes (promptly, if fn watches
		// ctx) and the result stands.
		<-j.done
		return nil
	}
}

// entrySource labels where a served document came from, for the
// per-source counters.
type entrySource int

const (
	sourceComputed entrySource = iota
	sourceDisk                 // legacy Options.Dir document
	sourceShared               // Options.Shared store
	sourcePeer                 // Options.Peers fetch
)

// name labels the source for trace events.
func (src entrySource) name() string {
	switch src {
	case sourceDisk:
		return "disk"
	case sourceShared:
		return "shared"
	case sourcePeer:
		return "peer"
	}
	return "computed"
}

// validKey reports whether key has the exact shape planSetKey
// produces: 32 lowercase hex digits. Every file- or URL-backed lookup
// refuses other shapes, so a request-supplied key (Pick reloads, the
// /planset peer endpoint) can never traverse paths under Options.Dir
// or inject segments into a peer URL.
func validKey(key string) bool {
	if len(key) != 32 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// loadFromSources tries every non-compute source in order — the
// restart Dir, the shared store, then the peers — and returns the
// first document that deserializes cleanly. A corrupt or unreadable
// document from any source is not fatal: the next source (ultimately
// the optimizer) takes over. Documents fetched from a peer are
// re-published to the shared store so the next sibling finds them one
// hop closer. Malformed keys resolve nowhere.
//
// acceptEps, when non-nil, filters documents by their recorded
// approximation factor: one recording an unacceptable factor is
// treated as a miss, exactly like a corrupt one — defense in depth
// behind the key (which already binds ε by hash) against a document
// planted or misfiled under the wrong tier's name. A classic Prepare
// accepts exactly its resolved factor, an anytime Prepare any
// generation of its effective ladder, and a refinement job anything at
// or below its step. Pick-time reloads pass nil and accept the
// document's own factor, which the key vouches for.
func (s *Server) loadFromSources(ctx context.Context, w *worker, key string, acceptEps func(eps float64) bool) (*entry, entrySource, bool) {
	if !validKey(key) {
		return nil, sourceComputed, false
	}
	accept := func(e *entry) bool {
		return acceptEps == nil || acceptEps(e.set.Epsilon)
	}
	if s.opts.Dir != "" {
		if raw, err := s.fs.ReadFile(s.docPath(key)); err == nil {
			if e, err := s.newEntry(raw, w); err == nil && accept(e) {
				return e, sourceDisk, true
			}
		}
	}
	if s.opts.Shared != nil {
		if doc, ok, err := s.opts.Shared.Get(key); err == nil && ok {
			if e, err := s.newEntry(doc, w); err == nil && accept(e) {
				return e, sourceShared, true
			}
		}
	}
	if s.opts.Peers != nil && ctx.Err() == nil {
		if doc, ok, _ := s.opts.Peers.Fetch(ctx, key); ok {
			if e, err := s.newEntry(doc, w); err == nil && accept(e) {
				s.publishShared(key, doc)
				return e, sourcePeer, true
			}
		}
	}
	return nil, sourceComputed, false
}

// publishShared best-effort publishes a document to the shared store.
func (s *Server) publishShared(key string, doc []byte) {
	if s.opts.Shared == nil {
		return
	}
	if err := s.opts.Shared.Put(key, doc); err == nil {
		s.mu.Lock()
		s.stats.SharedPuts++
		s.mu.Unlock()
	}
}

// prepareOn runs on a pool worker: serve the document from the first
// source that has it (Dir, shared store, peers), otherwise optimize,
// Save through the store format, persist (Dir and shared store) and
// cache the deserialized set. Picks therefore serve exactly the bytes
// a separate run-time process would load, wherever they came from.
//
// With a refinement ladder configured, a deadline-bounded request for
// a cold template takes the anytime path instead: compute the
// coarsest ladder generation within the caller's budget and refine in
// the background (see prepareAnytime).
func (s *Server) prepareOn(ctx context.Context, w *worker, key string, schema *catalog.Schema, cloudCfg cloud.Config, epsilon float64, tr *obs.PrepareTrace) (PrepareResult, error) {
	if lad := s.anytimeLadder(ctx, epsilon); lad != nil {
		return s.prepareAnytime(ctx, w, key, schema, cloudCfg, lad, tr)
	}
	e, src, ok := s.loadFromSources(ctx, w, key, func(got float64) bool { return got == epsilon })
	tr.Phase("lookup")
	if ok {
		tr.SetSource(src.name())
		s.insert(key, e, src)
		res := PrepareResult{Key: key, NumPlans: len(e.set.Plans), Cached: true}
		s.annotate(&res, key, e)
		tr.SetGeneration(res.Epsilon, res.Generation)
		return res, nil
	}
	e, cst, err := s.computeEntry(ctx, w, key, schema, cloudCfg, epsilon, tr)
	if err != nil {
		return PrepareResult{}, err
	}
	s.insert(key, e, sourceComputed)
	tr.Phase("save")
	res := PrepareResult{Key: key, NumPlans: len(e.set.Plans), Duration: cst.Duration, Stats: cst}
	s.annotate(&res, key, e)
	tr.SetGeneration(res.Epsilon, res.Generation)
	return res, nil
}

// anytimeLadder decides whether a Prepare takes the anytime path: the
// server has a refinement ladder, the caller brought a deadline (an
// unbounded caller gets the final generation directly — coarse-first
// would only add total work), and the template-effective ladder
// actually has a coarse step above the resolved factor.
func (s *Server) anytimeLadder(ctx context.Context, epsilon float64) refine.Ladder {
	if s.refiner == nil {
		return nil
	}
	if _, ok := ctx.Deadline(); !ok {
		return nil
	}
	lad := refine.Ladder(s.opts.RefineLadder).For(epsilon)
	if len(lad) < 2 {
		return nil
	}
	return lad
}

// prepareAnytime is the deadline-budgeted Prepare of a cold template
// on a ladder-configured server: serve the finest generation any
// non-compute source already has, otherwise compute the coarsest
// ladder step — a fraction of the exact optimization's work — under
// the caller's deadline, and schedule the remaining steps as
// background refinement jobs. Every generation is a full
// regret-certified plan set, so picks served before refinement
// finishes are coarse but never wrong; each finished generation
// atomically replaces the previous one (see runRefineJob).
func (s *Server) prepareAnytime(ctx context.Context, w *worker, key string, schema *catalog.Schema, cloudCfg cloud.Config, lad refine.Ladder, tr *obs.PrepareTrace) (PrepareResult, error) {
	inLadder := func(got float64) bool {
		for _, v := range lad {
			if v == got {
				return true
			}
		}
		return false
	}
	s.noteRefineState(key, schema, cloudCfg, lad)
	e, src, ok := s.loadFromSources(ctx, w, key, inLadder)
	tr.Phase("lookup")
	if ok {
		tr.SetSource(src.name())
		s.insert(key, e, src)
		res := PrepareResult{Key: key, NumPlans: len(e.set.Plans), Cached: true}
		s.annotate(&res, key, e)
		if !res.Final {
			s.scheduleRefine(lad.Jobs(key, e.set.Epsilon))
		}
		tr.SetGeneration(res.Epsilon, res.Generation)
		return res, nil
	}
	coarse := lad[0]
	e, cst, err := s.computeEntry(ctx, w, key, schema, cloudCfg, coarse, tr)
	if err != nil {
		return PrepareResult{}, err
	}
	s.insert(key, e, sourceComputed)
	tr.Phase("save")
	s.mu.Lock()
	s.stats.Refine.CoarsePrepares++
	s.mu.Unlock()
	s.scheduleRefine(lad.Jobs(key, coarse))
	res := PrepareResult{Key: key, NumPlans: len(e.set.Plans), Duration: cst.Duration, Stats: cst}
	s.annotate(&res, key, e)
	tr.SetGeneration(res.Epsilon, res.Generation)
	return res, nil
}

// noteRefineState records a key's refinement state once (first Prepare
// wins; the ladder is deterministic in the template, so later requests
// would record the same).
func (s *Server) noteRefineState(key string, schema *catalog.Schema, cloudCfg cloud.Config, lad refine.Ladder) {
	s.refineMu.Lock()
	if _, ok := s.refineStates[key]; !ok {
		s.refineStates[key] = &refineState{schema: schema, cloudCfg: cloudCfg, ladder: lad}
	}
	s.refineMu.Unlock()
}

// computeEntry optimizes a template at one approximation factor on
// worker w and round-trips the result through the store format: the
// returned entry is deserialized from exactly the bytes persisted to
// Dir and published to the shared store, so picks serve what a
// separate process would load. Shared by the classic Prepare path, the
// anytime coarse path, and background refinement.
func (s *Server) computeEntry(ctx context.Context, w *worker, key string, schema *catalog.Schema, cloudCfg cloud.Config, epsilon float64, tr *obs.PrepareTrace) (*entry, core.Stats, error) {
	model, err := cloud.NewModel(schema, cloudCfg, w.solver)
	if err != nil {
		return nil, core.Stats{}, err
	}
	opts := s.opts.Optimizer
	opts.Context = w.solver
	opts.Algebra = nil
	opts.Epsilon = epsilon
	if opts.Workers == 0 {
		// Request-level concurrency comes from the pool; one Prepare
		// stays on its worker unless explicitly configured otherwise.
		opts.Workers = 1
	}
	if s.opts.DonateWorkers {
		// Idle pool workers may join this optimization's split jobs and
		// ready masks.
		opts.Donor = (*serverDonor)(s)
	}
	result, err := core.OptimizeCtx(ctx, schema, model, opts)
	tr.Phase("optimize")
	if err != nil {
		return nil, core.Stats{}, err
	}
	s.recordPipeline(result.Stats)

	// With the pick index enabled, build it over the optimizer's plan
	// set now so the persisted document carries it (restarted servers
	// and shared stores skip the rebuild).
	var ix *index.Index
	if s.opts.Index {
		ix = s.buildIndex(w, model.Space(), result.Plans)
		tr.Phase("index_build")
	}

	// Failures past this point are server-side (serialization,
	// persistence), not the client's template; wrap them in ErrInternal
	// so transports report 5xx instead of 4xx.
	var buf bytes.Buffer
	if err := store.SaveIndexedEpsilon(&buf, model.MetricNames(), model.Space(), result.Plans, ix, epsilon); err != nil {
		return nil, core.Stats{}, fmt.Errorf("%w: %v", ErrInternal, err)
	}
	if s.opts.Dir != "" {
		if err := s.persist(key, buf.Bytes()); err != nil {
			return nil, core.Stats{}, fmt.Errorf("%w: persisting plan set: %v", ErrInternal, err)
		}
	}
	s.publishShared(key, buf.Bytes())
	e, err := s.newEntry(buf.Bytes(), w)
	if err != nil {
		return nil, core.Stats{}, fmt.Errorf("%w: reloading saved plan set: %v", ErrInternal, err)
	}
	return e, result.Stats, nil
}

// runRefineJob executes one background refinement step on the
// refiner's goroutine: compute (or fetch) the job's generation and
// atomically swap it into the serve cache, the persistence directory,
// and the shared store. The cache swap is the linearization point — a
// pick pins its entry for the whole request, so every pick observes
// exactly one generation. A sibling may refine first: a source
// document at or below the job's factor is swapped in instead of
// recomputed, and a job whose generation is already resident is
// obsolete (counted Skipped, the chain continues).
func (s *Server) runRefineJob(ctx context.Context, job refine.Job) error {
	s.refineMu.Lock()
	st, ok := s.refineStates[job.Key]
	s.refineMu.Unlock()
	if !ok {
		return refine.ErrObsolete
	}
	if v, ok := s.cache.Get(job.Key, false); ok && v.(*entry).set.Epsilon <= job.Epsilon {
		return refine.ErrObsolete
	}
	w := s.refineWorker
	before := w.solver.Stats
	defer func() {
		diff := w.solver.Stats
		diff.Sub(before)
		s.mu.Lock()
		s.stats.Geometry.Add(diff)
		s.mu.Unlock()
	}()
	tr := s.opts.Trace.Start("refine", job.Key)
	tr.SetGeneration(job.Epsilon, job.Gen)
	if e, src, ok := s.loadFromSources(ctx, w, job.Key, func(got float64) bool { return got <= job.Epsilon }); ok {
		tr.Phase("lookup")
		tr.SetSource(src.name())
		s.swapEntry(job.Key, e, src)
		tr.Finish(nil)
		return nil
	}
	tr.Phase("lookup")
	e, _, err := s.computeEntry(ctx, w, job.Key, st.schema, st.cloudCfg, job.Epsilon, tr)
	if err != nil {
		tr.Finish(err)
		return err
	}
	s.swapEntry(job.Key, e, sourceComputed)
	tr.Phase("save")
	tr.Finish(nil)
	return nil
}

// swapEntry atomically replaces a key's resident generation with a
// finer one. The ε guard runs under the cache lock, so a straggling
// coarser generation never downgrades, and pins (in-flight picks on
// the old generation) carry over — those picks keep their pinned
// object and observe exactly one generation. Source counters are
// bumped like insert's.
func (s *Server) swapEntry(key string, e *entry, src entrySource) {
	newEps := e.set.Epsilon
	_, swapped := s.cache.Replace(key, e, e.footprint(), func(old any) bool {
		return old.(*entry).set.Epsilon <= newEps
	})
	s.mu.Lock()
	if swapped {
		s.stats.Refine.Swaps++
	}
	switch src {
	case sourceDisk:
		s.stats.PrepareDiskHits++
	case sourceShared:
		s.stats.SharedHits++
	case sourcePeer:
		s.stats.PeerHits++
	}
	s.mu.Unlock()
}

// WaitRefinement blocks until every scheduled background refinement
// has settled — completed, skipped, failed, or cancelled — or ctx is
// done. On servers without a refinement ladder it returns immediately.
func (s *Server) WaitRefinement(ctx context.Context) error {
	if s.refiner == nil {
		return nil
	}
	return s.refiner.Wait(orBackground(ctx))
}

// serverDonor adapts the server's idle pool capacity to the
// optimizer's DonorPool: when the request queue is empty and workers
// are idle, an in-flight Prepare's split jobs may borrow them. Offers
// are strictly non-blocking — queued client requests always win over
// donations.
type serverDonor Server

func (d *serverDonor) Idle() int {
	s := (*Server)(d)
	if len(s.queue) > 0 {
		// Queued requests are about to claim the idle workers.
		return 0
	}
	idle := s.opts.Workers - int(s.busy.Load())
	if idle < 0 {
		idle = 0
	}
	return idle
}

func (d *serverDonor) Offer(task func()) bool {
	s := (*Server)(d)
	if d.Idle() <= 0 {
		return false
	}
	j := &job{done: make(chan struct{})}
	j.run = func(w *worker) {
		task()
		s.mu.Lock()
		s.stats.DonatedTasks++
		s.mu.Unlock()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	select {
	case s.queue <- j:
		return true
	default:
		return false
	}
}

// buildIndex builds the pick index over a just-optimized plan set,
// recording the build in the index stats. A failed build (e.g. an
// unbounded parameter space) is not fatal: the entry serves through the
// linear scan instead.
func (s *Server) buildIndex(w *worker, space *geometry.Polytope, plans []*core.PlanInfo) *index.Index {
	cands := make([]selection.Candidate, 0, len(plans))
	for _, info := range plans {
		cost, ok := info.Cost.(*pwl.Multi)
		if !ok {
			return nil // non-PWL algebra; Save will reject the set anyway
		}
		cands = append(cands, selection.Candidate{Plan: info.Plan, Cost: cost, RR: info.RR})
	}
	ix, err := index.Build(w.solver, space, cands, s.opts.IndexOptions)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	s.stats.Index.Builds++
	s.stats.Index.BuildTime += ix.BuildTime()
	s.mu.Unlock()
	return ix
}

// recordPipeline merges one optimization's dependency-scheduler metrics
// into the server's pipeline-utilization aggregate.
func (s *Server) recordPipeline(st core.Stats) {
	s.mu.Lock()
	s.stats.PipelineBusy += st.Scheduler.Busy
	s.stats.PipelineCapacity += time.Duration(int64(st.Scheduler.Wall) * int64(st.Workers))
	s.stats.SplitJobs += int64(st.Scheduler.SplitJobs)
	s.stats.DonatedMasks += int64(st.Scheduler.DonatedMasks)
	s.mu.Unlock()
}

// newEntry deserializes a document and precomputes the selection
// candidates. With the pick index enabled, the document's persisted
// index is used when present; otherwise (older documents, documents
// written by index-less servers) one is rebuilt on load. Either way the
// per-leaf candidate subsets are materialized once here, so a pick is a
// tree descent plus a subset scan.
func (s *Server) newEntry(doc []byte, w *worker) (*entry, error) {
	set, err := store.Load(bytes.NewReader(doc))
	if err != nil {
		return nil, err
	}
	cands := make([]selection.Candidate, len(set.Plans))
	for i, lp := range set.Plans {
		cands[i] = selection.Candidate{Plan: lp.Plan, Cost: lp.Cost, RR: lp.RR}
	}
	e := &entry{set: set, candidates: cands}
	if s.retainDocs() {
		e.doc = doc
	}
	if s.opts.Index {
		e.idx = set.Index
		if e.idx == nil {
			// Rebuild-on-load: the document predates the index stanza or
			// was written without one. A failed build falls back to the
			// linear scan.
			if ix, err := index.Build(w.solver, set.Space, cands, s.opts.IndexOptions); err == nil {
				e.idx = ix
				s.mu.Lock()
				s.stats.Index.Builds++
				s.stats.Index.BuildTime += ix.BuildTime()
				s.mu.Unlock()
			}
		}
		if e.idx != nil {
			e.leafCands = e.idx.LeafCandidates(cands)
		}
	}
	if s.opts.Telemetry != nil {
		// Telemetry bins pick points against the parameter space's
		// bounding box; computed once here, off the pick path. An
		// unbounded space leaves the box nil (recording disabled for the
		// entry).
		if lo, hi, ok := w.solver.BoundingBox(set.Space); ok {
			e.telLo, e.telHi = lo, hi
		}
	}
	return e, nil
}

// recordPickPoint offers one served pick point to the telemetry
// recorder. Nil telemetry or an unbounded parameter box makes it a
// no-op.
func (s *Server) recordPickPoint(key string, e *entry, x geometry.Vector) {
	if s.opts.Telemetry == nil || e.telLo == nil {
		return
	}
	s.opts.Telemetry.Record(key, e.telLo, e.telHi, x)
}

// insert publishes an entry into the memory-accounted cache (the
// first insert of a key wins) and bumps the source counter.
func (s *Server) insert(key string, e *entry, src entrySource) {
	s.cache.Add(key, e, e.footprint(), false)
	s.mu.Lock()
	switch src {
	case sourceDisk:
		s.stats.PrepareDiskHits++
	case sourceShared:
		s.stats.SharedHits++
	case sourcePeer:
		s.stats.PeerHits++
	}
	s.mu.Unlock()
}

func (s *Server) docPath(key string) string {
	return filepath.Join(s.opts.Dir, key+".json")
}

// persist writes the document through the fleet package's fsync'd
// atomic write (temp file + rename + directory sync) — the same
// durability the shared store gives the same bytes.
func (s *Server) persist(key string, doc []byte) error {
	return fleet.WriteFileAtomicFS(s.fs, s.opts.Dir, s.docPath(key), doc)
}

// Pick evaluates a selection policy at a parameter point against a
// prepared plan set. ctx cancels or deadline-bounds the request (a
// Pick abandoned while queued never starts).
func (s *Server) Pick(ctx context.Context, req PickRequest) (PickResult, error) {
	ctx = orBackground(ctx)
	var res PickResult
	var jerr error
	err := s.run(ctx, func(w *worker) {
		res, jerr = s.pickOn(ctx, w, req)
	})
	if err == nil {
		err = jerr
	} else {
		res = PickResult{}
	}
	if err != nil {
		s.noteCtxFailure(err)
		return PickResult{}, err
	}
	return res, nil
}

// PickBatchRequest evaluates one selection policy at many parameter
// points against one prepared plan set — the high-pick-rate interface
// the pick index is built for. The policy fields mirror PickRequest.
type PickBatchRequest struct {
	// Key is the plan-set key returned by Prepare.
	Key string
	// Points are the parameter vectors to pick for, answered in order.
	Points []geometry.Vector
	// Policy selects the preference policy; the zero value means
	// PolicyFrontier.
	Policy Policy
	// Weights configures PolicyWeightedSum.
	Weights []float64
	// Minimize and Bounds configure PolicyMinimizeSubjectTo.
	Minimize int
	Bounds   []selection.Bound
	// Order configures PolicyLexicographic.
	Order []int
}

// PickBatchResult answers a PickBatchRequest: Choices[i] are the
// selected plans for Points[i].
type PickBatchResult struct {
	// Metrics names the cost components.
	Metrics []string
	// Choices holds, per point, the selected plans (exactly one for the
	// single-plan policies).
	Choices [][]selection.Choice
	// Epsilon, Generation, and Final describe the generation the whole
	// batch was served from (the entry is pinned for the request, so a
	// batch never straddles a refinement swap); see PickResult.
	Epsilon    float64
	Generation int
	Final      bool
}

// PickBatch evaluates a selection policy at every point of the request
// against a prepared plan set, as one queued unit of work. Points are
// sorted into index cells first, so consecutive picks of one cell reuse
// its candidate subset; answers come back in request order and are
// byte-identical to issuing the Picks one by one. Any invalid point or
// selection failure fails the whole batch (the error names the point).
func (s *Server) PickBatch(ctx context.Context, req PickBatchRequest) (PickBatchResult, error) {
	ctx = orBackground(ctx)
	var res PickBatchResult
	var jerr error
	err := s.run(ctx, func(w *worker) {
		res, jerr = s.pickBatchOn(ctx, w, req)
	})
	if err == nil {
		err = jerr
	} else {
		res = PickBatchResult{}
	}
	if err != nil {
		s.noteCtxFailure(err)
		return PickBatchResult{}, err
	}
	return res, nil
}

// pickBatchOn executes a batch on a pool worker.
func (s *Server) pickBatchOn(ctx context.Context, w *worker, req PickBatchRequest) (PickBatchResult, error) {
	e, release, err := s.entryFor(ctx, req.Key, w)
	if err != nil {
		return PickBatchResult{}, err
	}
	defer release()
	if !validPolicy(req.Policy) {
		// Request-shape problems are reported as such, before any
		// per-point validation, and even for empty batches.
		return PickBatchResult{}, fmt.Errorf("serve: unknown policy %q", req.Policy)
	}
	for i, x := range req.Points {
		if err := e.validatePoint(x); err != nil {
			return PickBatchResult{}, fmt.Errorf("point %d: %w", i, err)
		}
	}
	// Route every point to its cell, then process in cell order: picks
	// sharing a leaf run back to back on the same (cache-hot) candidate
	// subset. Fallback points (no index, or outside the box) share the
	// full candidate set and run first.
	leaves := make([]int32, len(req.Points))
	indexPicks := 0
	for i, x := range req.Points {
		leaves[i] = -1
		if e.idx != nil {
			if leaf, _, ok := e.idx.Locate(x); ok {
				leaves[i] = leaf
				indexPicks++
			}
		}
	}
	order := make([]int, len(req.Points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return leaves[order[a]] < leaves[order[b]] })

	shell := PickRequest{
		Policy:   req.Policy,
		Weights:  req.Weights,
		Minimize: req.Minimize,
		Bounds:   req.Bounds,
		Order:    req.Order,
	}
	choices := make([][]selection.Choice, len(req.Points))
	for _, i := range order {
		cands := e.candidates
		if leaves[i] >= 0 {
			cands = e.leafCands[leaves[i]]
		}
		shell.Point = req.Points[i]
		cs, err := applyPolicy(cands, shell)
		if err != nil {
			return PickBatchResult{}, fmt.Errorf("point %d: %w", i, err)
		}
		choices[i] = cs
	}
	gen, final := s.generationOf(req.Key, e.set.Epsilon)
	s.mu.Lock()
	s.stats.Picks += int64(len(req.Points))
	s.stats.Index.IndexPicks += int64(indexPicks)
	s.stats.Index.FallbackPicks += int64(len(req.Points) - indexPicks)
	s.stats.Index.BatchRequests++
	s.stats.Index.BatchPoints += int64(len(req.Points))
	if !final {
		s.stats.Refine.CoarsePicks += int64(len(req.Points))
	}
	s.mu.Unlock()
	for _, x := range req.Points {
		s.recordPickPoint(req.Key, e, x)
	}
	return PickBatchResult{Metrics: e.set.Metrics, Choices: choices,
		Epsilon: e.set.Epsilon, Generation: gen, Final: final}, nil
}

// pickOn executes a Pick on a pool worker. Selection is pure point
// evaluation (the relevance-region fast path needs no LPs), so the
// worker's solver is untouched; the queue trip still bounds the
// server's concurrent work. With a pick index on the entry, the point
// is routed to its cell and only the cell's candidate subset is
// scanned — byte-identical to the linear fallback by the index's
// conservative construction.
func (s *Server) pickOn(ctx context.Context, w *worker, req PickRequest) (PickResult, error) {
	e, release, err := s.entryFor(ctx, req.Key, w)
	if err != nil {
		return PickResult{}, err
	}
	defer release()
	if err := e.validatePoint(req.Point); err != nil {
		return PickResult{}, err
	}
	cands, viaIndex := e.lookup(req.Point)
	choices, err := applyPolicy(cands, req)
	if err != nil {
		return PickResult{}, err
	}
	gen, final := s.generationOf(req.Key, e.set.Epsilon)
	s.mu.Lock()
	s.stats.Picks++
	if viaIndex {
		s.stats.Index.IndexPicks++
	} else {
		s.stats.Index.FallbackPicks++
	}
	if !final {
		s.stats.Refine.CoarsePicks++
	}
	s.mu.Unlock()
	s.recordPickPoint(req.Key, e, req.Point)
	return PickResult{Metrics: e.set.Metrics, Choices: choices,
		Epsilon: e.set.Epsilon, Generation: gen, Final: final}, nil
}

// entryFor resolves a plan-set key, transparently reloading evicted
// entries from the non-compute sources (Dir, shared store, peers). The
// resident entry is pinned against eviction for the duration of the
// request; callers must call the returned release exactly once.
func (s *Server) entryFor(ctx context.Context, key string, w *worker) (*entry, func(), error) {
	if v, ok := s.cache.Get(key, true); ok {
		return v.(*entry), func() { s.cache.Unpin(key) }, nil
	}
	e, err := s.reload(ctx, key, w)
	if err != nil {
		return nil, nil, err
	}
	if v, ok := s.cache.Get(key, true); ok {
		return v.(*entry), func() { s.cache.Unpin(key) }, nil
	}
	// The re-admitted entry was already evicted again (budget pressure):
	// serve the loaded object unpinned — it stays alive for this
	// request regardless of cache membership.
	return e, func() {}, nil
}

// reload loads an evicted (or never-seen) key's document from Dir, the
// shared store, or a peer — never by computing — deduplicating
// concurrent reloads of one key. As with Prepare's singleflight, a
// flight whose winner was cancelled does not poison waiters with live
// contexts: they retry the reload themselves.
func (s *Server) reload(ctx context.Context, key string, w *worker) (*entry, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		if fl, ok := s.reloading[key]; ok {
			s.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if fl.err != nil && isCtxErr(fl.err) {
				continue
			}
			return fl.e, fl.err
		}
		fl := &inflightReload{done: make(chan struct{})}
		s.reloading[key] = fl
		s.mu.Unlock()

		// A pick-time reload accepts the document's own approximation
		// factor: the request addressed the tier by key, and the key
		// hash already binds ε.
		if e, src, ok := s.loadFromSources(ctx, w, key, nil); ok {
			fl.e = e
			s.insert(key, e, src)
			s.mu.Lock()
			s.stats.Reloads++
			s.mu.Unlock()
		} else if cerr := ctx.Err(); cerr != nil {
			// The lookup may have been cut short (peer fetch aborted);
			// report the cancellation, not a misleading unknown-key.
			fl.err = cerr
		} else {
			fl.err = fmt.Errorf("%w: %q", ErrUnknownPlanSet, key)
		}
		s.mu.Lock()
		delete(s.reloading, key)
		s.mu.Unlock()
		close(fl.done)
		return fl.e, fl.err
	}
}

// validatePoint rejects points the stored plan set cannot price.
func (e *entry) validatePoint(x geometry.Vector) error {
	if len(x) != e.set.Space.Dim() {
		return fmt.Errorf("serve: point dimension %d, want %d", len(x), e.set.Space.Dim())
	}
	if !e.set.Space.ContainsPoint(x, geometry.CompareEps) {
		// Outside the parameter space the stored cost pieces would be
		// extrapolated and relevance regions are meaningless; reject
		// instead of fabricating a result.
		return fmt.Errorf("serve: point %v outside the plan set's parameter space", x)
	}
	return nil
}

// validPolicy reports whether p names a selection policy.
func validPolicy(p Policy) bool {
	switch p {
	case PolicyFrontier, "", PolicyWeightedSum, PolicyMinimizeSubjectTo, PolicyLexicographic:
		return true
	}
	return false
}

// applyPolicy runs the request's selection policy over a candidate set.
func applyPolicy(cands []selection.Candidate, req PickRequest) ([]selection.Choice, error) {
	switch req.Policy {
	case PolicyFrontier, "":
		return selection.Frontier(cands, req.Point), nil
	case PolicyWeightedSum:
		c, err := selection.WeightedSum(cands, req.Point, req.Weights)
		if err != nil {
			return nil, err
		}
		return []selection.Choice{c}, nil
	case PolicyMinimizeSubjectTo:
		c, err := selection.MinimizeSubjectTo(cands, req.Point, req.Minimize, req.Bounds)
		if err != nil {
			return nil, err
		}
		return []selection.Choice{c}, nil
	case PolicyLexicographic:
		c, err := selection.Lexicographic(cands, req.Point, req.Order)
		if err != nil {
			return nil, err
		}
		return []selection.Choice{c}, nil
	default:
		return nil, fmt.Errorf("serve: unknown policy %q", req.Policy)
	}
}
