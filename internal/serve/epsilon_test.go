package serve

import (
	"context"
	"os"
	"testing"

	"mpq/internal/fleet"
)

// epsTemplate is testTemplate with an approximation-factor override.
func epsTemplate(seed int64, eps float64) Template {
	tpl := testTemplate(seed)
	tpl.Epsilon = &eps
	return tpl
}

// TestEpsilonTiersCoexist: the same template prepared exact and at
// ε = 0.05 on one server must live under distinct keys — two
// independent cache entries, two shared-store documents, each serving
// its own tier — and repeat Prepares of either tier must hit their own
// entry.
func TestEpsilonTiersCoexist(t *testing.T) {
	shared, err := fleet.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 2, Index: true, Shared: shared})
	defer s.Close()

	exact, err := s.Prepare(context.Background(), epsTemplate(21, 0))
	if err != nil {
		t.Fatal(err)
	}
	approx, err := s.Prepare(context.Background(), epsTemplate(21, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Key == approx.Key {
		t.Fatalf("exact and ε=0.05 tiers share key %s", exact.Key)
	}
	if exact.Cached || approx.Cached {
		t.Errorf("first Prepares reported cached: exact=%v approx=%v", exact.Cached, approx.Cached)
	}
	if st := s.Stats(); st.SharedPuts != 2 {
		t.Errorf("published %d documents, want 2 (one per tier)", st.SharedPuts)
	}
	tiers := []struct {
		eps float64
		res PrepareResult
	}{{0, exact}, {0.05, approx}}
	for _, tier := range tiers {
		again, err := s.Prepare(context.Background(), epsTemplate(21, tier.eps))
		if err != nil || !again.Cached || again.Key != tier.res.Key {
			t.Errorf("repeat Prepare at eps=%g: cached=%v key=%s err=%v", tier.eps, again.Cached, again.Key, err)
		}
	}
	psExact, ok := s.PlanSet(exact.Key)
	if !ok {
		t.Fatal("exact plan set missing")
	}
	psApprox, ok := s.PlanSet(approx.Key)
	if !ok {
		t.Fatal("approx plan set missing")
	}
	if psExact.Epsilon != 0 || psApprox.Epsilon != 0.05 {
		t.Errorf("tier factors: exact %v (want 0), approx %v (want 0.05)", psExact.Epsilon, psApprox.Epsilon)
	}
	if len(psApprox.Plans) > len(psExact.Plans) {
		t.Errorf("ε tier kept %d plans, exact %d: approximation grew the set", len(psApprox.Plans), len(psExact.Plans))
	}
	// Both tiers pick at every test point without cross-talk.
	for _, x := range testPoints {
		for _, key := range []string{exact.Key, approx.Key} {
			if _, err := s.Pick(context.Background(), PickRequest{Key: key, Point: x}); err != nil {
				t.Fatalf("pick on tier %s at %v: %v", key, x, err)
			}
		}
	}
}

// TestEpsilonTierMismatchIsComputeNotWrongAnswer: a document planted
// under the other tier's filename must be rejected by the prepare-time
// tier validation and recomputed — a cache-key miss, never a silent
// wrong-tier hit. The key already makes an accidental collision
// impossible; this exercises the defense in depth behind it.
func TestEpsilonTierMismatchIsComputeNotWrongAnswer(t *testing.T) {
	// Compute the ε-tier document in a throwaway server.
	dirA := t.TempDir()
	a := New(Options{Workers: 1, Index: true, Dir: dirA})
	approx, err := a.Prepare(context.Background(), epsTemplate(21, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	epsDoc, err := os.ReadFile(a.docPath(approx.Key))
	a.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Plant it under the exact tier's key in a fresh server's Dir.
	dirB := t.TempDir()
	b := New(Options{Workers: 1, Index: true, Dir: dirB})
	defer b.Close()
	exactKey, err := b.Key(epsTemplate(21, 0))
	if err != nil {
		t.Fatal(err)
	}
	if exactKey == approx.Key {
		t.Fatal("tiers unexpectedly share a key")
	}
	if err := os.WriteFile(b.docPath(exactKey), epsDoc, 0o666); err != nil {
		t.Fatal(err)
	}

	// Preparing the exact tier must ignore the planted document and
	// optimize from scratch.
	exact, err := b.Prepare(context.Background(), epsTemplate(21, 0))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cached {
		t.Fatal("exact Prepare served the planted ε-tier document")
	}
	ps, ok := b.PlanSet(exact.Key)
	if !ok {
		t.Fatal("exact plan set missing")
	}
	if ps.Epsilon != 0 {
		t.Errorf("exact tier loaded with epsilon %v", ps.Epsilon)
	}
}
