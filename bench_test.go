package mpq_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mpq/internal/baseline"
	"mpq/internal/bench"
	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/pwl"
	"mpq/internal/region"
	"mpq/internal/workload"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// optimizeOnce runs one optimizer invocation for benchmarking and
// reports the Figure 12 work metrics.
func optimizeOnce(b *testing.B, tables, params int, shape workload.Shape, seed int64, opts *core.Options) *core.Stats {
	b.Helper()
	stats, err := bench.RunOnce(bench.Config{Shape: shape, Options: opts}, tables, params, seed)
	if err != nil {
		b.Fatal(err)
	}
	return stats
}

// BenchmarkFigure12 regenerates the data points of the paper's Figure
// 12 (optimization time, created plans, solved LPs) at benchmark-scale
// sizes; cmd/mpqbench runs the full ranges with medians of 25 queries.
func BenchmarkFigure12(b *testing.B) {
	cases := []struct {
		shape  workload.Shape
		params int
		tables []int
	}{
		{workload.Chain, 1, []int{4, 6, 8, 10}},
		{workload.Star, 1, []int{4, 6, 8}},
		{workload.Chain, 2, []int{4, 5, 6}},
		{workload.Star, 2, []int{4, 5}},
	}
	for _, tc := range cases {
		for _, n := range tc.tables {
			name := fmt.Sprintf("%s-%dp/tables=%d", tc.shape, tc.params, n)
			b.Run(name, func(b *testing.B) {
				var last *core.Stats
				for i := 0; i < b.N; i++ {
					last = optimizeOnce(b, n, tc.params, tc.shape, int64(i)+1, nil)
				}
				b.ReportMetric(float64(last.CreatedPlans), "plans")
				b.ReportMetric(float64(last.Geometry.LPs), "LPs")
				b.ReportMetric(float64(last.FinalPlans), "finalPlans")
			})
		}
	}
}

// BenchmarkFigure12Parallel runs the two profile-dominating Figure 12
// cases with the parallel wavefront at GOMAXPROCS workers, for direct
// comparison against the sequential BenchmarkFigure12 numbers (the
// plans and LPs metrics must match the sequential run exactly).
func BenchmarkFigure12Parallel(b *testing.B) {
	cases := []struct {
		shape  workload.Shape
		params int
		tables int
	}{
		{workload.Chain, 2, 6},
		{workload.Star, 2, 5},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s-%dp/tables=%d", tc.shape, tc.params, tc.tables)
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Workers = 0 // GOMAXPROCS
			var last *core.Stats
			for i := 0; i < b.N; i++ {
				o := opts
				last = optimizeOnce(b, tc.tables, tc.params, tc.shape, int64(i)+1, &o)
			}
			b.ReportMetric(float64(last.CreatedPlans), "plans")
			b.ReportMetric(float64(last.Geometry.LPs), "LPs")
			b.ReportMetric(float64(last.Workers), "workers")
		})
	}
}

// BenchmarkAblation measures the effect of the Section 6.2 refinements
// (relevance points, redundant-cutout elimination, emptiness strategy)
// and of Cartesian-product postponement on one mid-size query.
func BenchmarkAblation(b *testing.B) {
	mk := func(strategy region.EmptinessStrategy, points int, elim, postpone bool) core.Options {
		return core.Options{
			Region: region.Options{
				Strategy:                  strategy,
				RelevancePoints:           points,
				EliminateRedundantCutouts: elim,
			},
			PostponeCartesian: postpone,
		}
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"refinements=all/strategy=bemporad", mk(region.StrategyBemporad, 16, true, true)},
		{"refinements=all/strategy=coverdiff", mk(region.StrategyCoverDiff, 16, true, true)},
		{"norelevancepoints", mk(region.StrategyBemporad, 0, true, true)},
		{"nocutoutelimination", mk(region.StrategyBemporad, 16, false, true)},
		{"norefinements", mk(region.StrategyBemporad, 0, false, true)},
		{"nocartesianpostponement", mk(region.StrategyBemporad, 16, true, false)},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var last *core.Stats
			for i := 0; i < b.N; i++ {
				opts := v.opts
				last = optimizeOnce(b, 6, 1, workload.Chain, 3, &opts)
			}
			b.ReportMetric(float64(last.Geometry.LPs), "LPs")
		})
	}
}

// BenchmarkCompactionAblation measures the piece-compaction design
// choice of the PWL algebra (DESIGN.md).
func BenchmarkCompactionAblation(b *testing.B) {
	for _, compact := range []bool{true, false} {
		b.Run(fmt.Sprintf("compact=%v", compact), func(b *testing.B) {
			schema, err := workload.Generate(workload.Config{Tables: 5, Params: 2, Shape: workload.Chain, Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				ctx := geometry.NewContext()
				model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
				if err != nil {
					b.Fatal(err)
				}
				algebra := core.NewPWLAlgebra(ctx, 2)
				algebra.Compact = compact
				opts := core.DefaultOptions()
				opts.Context = ctx
				opts.Algebra = algebra
				if _, err := core.Optimize(schema, model, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPQBlowup measures the Section 1.1 experiment: MPQ result
// size stays constant while the PQ fee-encoding grows linearly.
func BenchmarkPQBlowup(b *testing.B) {
	for _, k := range []int{20, 100} {
		b.Run(fmt.Sprintf("plans=%d", k), func(b *testing.B) {
			var mpqSize, pqSize int
			for i := 0; i < b.N; i++ {
				alts, space := baseline.BlowupInstance(k, 5)
				schema := core.StaticSchema(1, []float64{0}, []float64{1})
				model := &core.StaticModel{ParamSpace: space, Metrics: []string{"time", "fees"}, Plans: alts}
				res, err := core.Optimize(schema, model, core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				algebra := core.NewPWLAlgebra(geometry.NewContext(), 2)
				mpqSize = len(res.Plans)
				pqSize = baseline.PQEncodedSetSize(alts, algebra, geometry.Vector{0.5})
			}
			b.ReportMetric(float64(mpqSize), "mpqPlans")
			b.ReportMetric(float64(pqSize), "pqPlans")
		})
	}
}

// BenchmarkTheorem6 measures Pareto-set sizes under random linear cost
// weights against the 2^((nX+1)*nM) bound of Theorem 6.
func BenchmarkTheorem6(b *testing.B) {
	for _, tc := range []struct{ nX, nM, plans int }{
		{1, 2, 64},
		{2, 2, 64},
	} {
		bound := 1 << uint((tc.nX+1)*tc.nM)
		b.Run(fmt.Sprintf("nX=%d/nM=%d", tc.nX, tc.nM), func(b *testing.B) {
			var kept int
			for i := 0; i < b.N; i++ {
				res := randomLinearPlanSet(b, int64(i)+1, tc.nX, tc.nM, tc.plans)
				kept = len(res.Plans)
			}
			b.ReportMetric(float64(kept), "paretoPlans")
			b.ReportMetric(float64(bound), "theorem6Bound")
		})
	}
}

// BenchmarkBaselines compares RRPA against the fixed-parameter
// baselines on the same query (different problems: the baselines must
// re-optimize for every parameter value).
func BenchmarkBaselines(b *testing.B) {
	schema, err := workload.Generate(workload.Config{Tables: 6, Params: 1, Shape: workload.Chain, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		b.Fatal(err)
	}
	algebra := core.NewPWLAlgebra(ctx, 2)
	x := geometry.Vector{0.4}
	b.Run("mpq-rrpa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := core.DefaultOptions()
			opts.Context = geometry.NewContext()
			if _, err := core.Optimize(schema, model, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("selinger-fixed-x", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.Selinger(schema, model, algebra, x, cloud.MetricTime, true)
		}
	})
	b.Run("mq-pareto-fixed-x", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.ParetoMQ(schema, model, algebra, x, true)
		}
	})
}

// BenchmarkGeometry micro-benchmarks the LP-level operations dominating
// the optimizer profile.
func BenchmarkGeometry(b *testing.B) {
	ctx := geometry.NewContext()
	box := geometry.Box(geometry.Vector{0, 0}, geometry.Vector{1, 1})
	cut := box.With(geometry.Halfspace{W: geometry.Vector{1, 1}, B: 1.2})
	b.Run("chebyshev", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := box.With(geometry.Halfspace{W: geometry.Vector{1, 1}, B: 1 + float64(i%7)/10})
			if _, _, ok := ctx.Chebyshev(p); !ok {
				b.Fatal("empty")
			}
		}
	})
	b.Run("regiondiff", func(b *testing.B) {
		cutouts := []*geometry.Polytope{
			geometry.Box(geometry.Vector{0, 0}, geometry.Vector{0.5, 0.5}),
			geometry.Box(geometry.Vector{0.5, 0.5}, geometry.Vector{1, 1}),
		}
		for i := 0; i < b.N; i++ {
			ctx.RegionDiff(box, cutouts)
		}
	})
	b.Run("unionconvex", func(b *testing.B) {
		polys := []*geometry.Polytope{
			geometry.Box(geometry.Vector{0, 0}, geometry.Vector{0.6, 1}),
			geometry.Box(geometry.Vector{0.4, 0}, geometry.Vector{1, 1}),
		}
		for i := 0; i < b.N; i++ {
			ctx.UnionConvex(polys)
		}
	})
	_ = cut
}

// BenchmarkPWLDom micro-benchmarks the dominance-region computation on
// grid-aligned functions (the optimizer's hottest pwl operation).
func BenchmarkPWLDom(b *testing.B) {
	ctx := geometry.NewContext()
	lo, hi := geometry.Vector{0, 0}, geometry.Vector{1, 1}
	grid := pwl.NewGrid(lo, hi, 2)
	f := func(x geometry.Vector) float64 { return 1 + x[0]*x[1] }
	g := func(x geometry.Vector) float64 { return 1.2 + 0.5*x[0] }
	c1 := pwl.NewMulti(grid.Interpolate(f), grid.Interpolate(g))
	c2 := pwl.NewMulti(grid.Interpolate(g), grid.Interpolate(f))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pwl.Dom(ctx, c1, c2)
	}
}

// randomLinearPlanSet optimizes a static set of plans whose linear cost
// weights are drawn independently at random — the random model of the
// Theorem 6 analysis.
func randomLinearPlanSet(tb testing.TB, seed int64, nX, nM, plans int) *core.Result {
	tb.Helper()
	rng := newRand(seed)
	lo := make([]float64, nX)
	hi := make([]float64, nX)
	for i := range hi {
		hi[i] = 1
	}
	space := geometry.Box(lo, hi)
	alts := make([]core.Alternative, 0, plans)
	for p := 0; p < plans; p++ {
		comps := make([]*pwl.Function, nM)
		for m := 0; m < nM; m++ {
			w := geometry.NewVector(nX)
			for i := range w {
				w[i] = rng.Float64()
			}
			comps[m] = pwl.Linear(space, w, rng.Float64())
		}
		alts = append(alts, core.Alternative{Op: fmt.Sprintf("p%d", p), Cost: pwl.NewMulti(comps...)})
	}
	schema := core.StaticSchema(nX, lo, hi)
	model := &core.StaticModel{ParamSpace: space, Metrics: metricNamesN(nM), Plans: alts}
	res, err := core.Optimize(schema, model, core.DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

func metricNamesN(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
	}
	return names
}
