package mpq_test

import (
	"bytes"
	"testing"

	"mpq"
)

// TestFacadePersistAndSelect exercises the full deployment workflow
// through the public API: optimize, save, load, select.
func TestFacadePersistAndSelect(t *testing.T) {
	schema, err := mpq.GenerateWorkload(mpq.WorkloadConfig{
		Tables: 3, Params: 1, Shape: mpq.Chain, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := mpq.NewContext()
	model, err := mpq.NewCloudModel(schema, mpq.DefaultCloudConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts := mpq.DefaultOptions()
	opts.Context = ctx
	res, err := mpq.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := mpq.SavePlanSet(&buf, model.MetricNames(), model.Space(), res.Plans); err != nil {
		t.Fatal(err)
	}
	ps, err := mpq.LoadPlanSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cands := mpq.SelectionCandidates(ps)
	if len(cands) != len(res.Plans) {
		t.Fatalf("candidates = %d, want %d", len(cands), len(res.Plans))
	}
	x := mpq.Vector{0.3}
	front := mpq.SelectFrontier(cands, x)
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	choice, err := mpq.SelectWeightedSum(cands, x, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if choice.Plan == nil {
		t.Fatal("no plan selected")
	}
	// The weighted-sum winner must be on the frontier.
	found := false
	for _, c := range front {
		if c.Plan.String() == choice.Plan.String() {
			found = true
		}
	}
	if !found {
		t.Error("weighted-sum choice not on the frontier")
	}
	// Budget selection with a generous bound succeeds.
	if _, err := mpq.SelectMinimizeSubjectTo(cands, x, 1, []mpq.Bound{{Metric: 0, Max: 1e9}}); err != nil {
		t.Errorf("budgeted selection failed: %v", err)
	}
}

// TestFacadeDiagrams builds both diagram kinds through the public API.
func TestFacadeDiagrams(t *testing.T) {
	space := mpq.Interval(0, 1)
	plans := mpq.DiagramPlans(
		[]string{"a", "b"},
		[]*mpq.PWLMulti{
			mpq.MultiCost(mpq.LinearCost(space, mpq.Vector{1}, 0), mpq.ConstantCost(space, 2)),
			mpq.MultiCost(mpq.LinearCost(space, mpq.Vector{-1}, 1), mpq.ConstantCost(space, 1)),
		},
	)
	front, err := mpq.FrontSizeDiagram(plans, mpq.Vector{0}, mpq.Vector{1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Cells) != 10 {
		t.Errorf("cells = %d", len(front.Cells))
	}
	win, err := mpq.WinnerDiagram(plans, mpq.Vector{0}, mpq.Vector{1}, 10, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if win.Distinct() != 2 {
		t.Errorf("distinct winners = %d, want 2", win.Distinct())
	}
	var buf bytes.Buffer
	win.RenderASCII(&buf)
	if buf.Len() == 0 {
		t.Error("empty diagram rendering")
	}
}
