// Package mpq is a Go implementation of Multi-Objective Parametric
// Query Optimization (MPQ) as introduced by Trummer and Koch (VLDB
// 2014): query optimization where plans are compared according to
// multiple cost metrics (e.g. execution time and monetary fees) and
// plan costs are functions of parameters unknown at optimization time
// (e.g. predicate selectivities).
//
// The optimizer produces a Pareto plan set: for every possible plan p
// and every point x of the parameter space, the set contains a plan
// that is at least as good as p at x on every metric. At run time, when
// parameter values and user preferences are known, the final plan is
// selected from the precomputed set without further optimization.
//
// # Quick start
//
//	schema, _ := mpq.GenerateWorkload(mpq.WorkloadConfig{
//		Tables: 4, Params: 1, Shape: mpq.Chain, Seed: 1,
//	})
//	ctx := mpq.NewContext()
//	model, _ := mpq.NewCloudModel(schema, mpq.DefaultCloudConfig(), ctx)
//	opts := mpq.DefaultOptions()
//	opts.Context = ctx
//	result, _ := mpq.Optimize(schema, model, opts)
//	for _, info := range result.Plans {
//		fmt.Println(info.Plan)
//	}
//
// The core algorithm is the Relevance Region Pruning Algorithm (RRPA):
// dynamic programming over table sets where every plan carries a
// relevance region — the part of the parameter space for which no
// known alternative dominates it. Plans whose relevance region becomes
// empty are pruned. The PWL specialization (PWL-RRPA) represents cost
// functions as piecewise-linear functions over convex polytopes and
// implements all pruning geometry with small linear programs.
//
// # Parallelism
//
// With Options.Workers > 1 the dynamic program runs on a pipelined
// dependency scheduler over a cardinality-sharded plan-set store: a
// table set is planned the moment every strict subset it decomposes
// into has completed, and wide table sets are split across workers
// with an order-preserving reduction (see DESIGN.md, "Concurrency
// model"). Plan sets and aggregate LP statistics are identical for
// every worker count; Stats.Scheduler and Stats.PipelineUtilization
// report how well the pipeline kept the pool busy.
//
// # Serving
//
// The optimizer also runs as a long-lived service (NewServer, and the
// cmd/mpqserve binary): Prepare optimizes a query template once,
// persists the Pareto plan set through the store format and caches it
// under a schema+cost-model+configuration hash; Pick selects a plan
// for concrete parameter values and a preference policy against the
// cached set. The geometry layer is reentrant (shared immutable
// configuration, per-worker solvers), so one server handles many
// concurrent requests. ServeStats exposes, next to the request and
// cache counters, the optimizer pipeline's behavior across all
// Prepares: PipelineBusy/PipelineCapacity/PipelineUtilization (mean
// worker utilization of the dependency scheduler) and SplitJobs
// (table sets planned with intra-mask split parallelism).
//
// With ServeOptions.Index, Prepare additionally builds a
// point-location pick index over the plan set's parameter space (a
// kd-tree style cell decomposition, persisted with the plan set as the
// store's v3 index stanza) so each pick scans only the candidates
// relevant in the query point's cell — byte-identical to the full
// linear scan, which remains the verified fallback. High pick rates
// batch through PickBatch, which sorts the points into index cells and
// answers them in request order:
//
//	srv := mpq.NewServer(mpq.ServeOptions{Workers: 4, Index: true})
//	defer srv.Close()
//	prep, _ := srv.Prepare(context.Background(), mpq.ServeTemplate{
//		Workload: mpq.WorkloadConfig{
//			Tables: 6, Params: 2, Shape: mpq.Clique, Seed: 7,
//		}})
//	res, _ := srv.PickBatch(context.Background(), mpq.PickBatchRequest{
//		Key:     prep.Key,
//		Points:  []mpq.Vector{{0.2, 0.4}, {0.5, 0.5}, {0.8, 0.1}},
//		Policy:  mpq.PolicyWeightedSum,
//		Weights: []float64{1, 10000},
//	})
//	for i, choices := range res.Choices {
//		fmt.Println(i, choices[0].Plan, choices[0].Cost)
//	}
//
// ServeStats.Index reports the index behavior: leaves and average
// candidates per leaf, build time, picks served by cell lookup versus
// the linear fallback, and batch request/point counts (Stats.Picks
// counts batch picks per point).
//
// # Approximate frontiers
//
// Options.Epsilon > 0 turns the exact Pareto set into an ε-approximate
// frontier: every plan the optimizer drops is guaranteed to be within
// a (1+ε) cost factor of a kept plan, on every metric, everywhere in
// the parameter space. The knob shrinks every hot path at once —
// fewer plans survive each dynamic-programming level, so fewer
// dominance LPs are solved, the stored plan set is smaller, and every
// pick scans fewer candidates. ε = 0 (the default) is bit-identical to
// the historical exact path, and results are deterministic for every
// worker count at every ε.
//
// The factor is part of the serving cache key, so one server answers
// exact and approximate tiers of the same template side by side, each
// from its own plan set:
//
//	srv := mpq.NewServer(mpq.ServeOptions{Workers: 4})
//	defer srv.Close()
//	tpl := mpq.ServeTemplate{Workload: mpq.WorkloadConfig{
//		Tables: 6, Params: 2, Shape: mpq.Clique, Seed: 7,
//	}}
//	exact, _ := srv.Prepare(context.Background(), tpl) // full Pareto set
//	eps := 0.05
//	tpl.Epsilon = &eps
//	approx, _ := srv.Prepare(context.Background(), tpl) // ≤ 5% regret tier
//	fmt.Println(exact.Key != approx.Key)                // true: distinct tiers
//
// The bench harness certifies the contract empirically (mpqbench
// -epsilon measures the realized max regret and the plan-set and LP
// savings per factor), and the CI baseline gates ε > 0 cases on the
// certified regret rather than on exact counts. See DESIGN.md,
// "ε-approximate frontiers".
//
// # Fleet serving
//
// A fleet of servers shares preparations through a shared plan-set
// store (ServeOptions.Shared): every prepared document is published
// under its cache key, and a sibling server consults the store — and,
// with ServeOptions.Peers, other servers over HTTP — before
// optimizing, so each template is computed once per fleet. The
// in-memory cache is bounded by ServeOptions.CacheBytes (size-aware
// LRU; evicted plan sets reload transparently at pick time), and
// ServeOptions.MaxConcurrentPrepares keeps expensive Prepares from
// monopolizing the solver pool. Two servers over one shared directory:
//
//	shared, _ := mpq.NewSharedDirStore("/var/lib/mpq/plansets")
//	a := mpq.NewServer(mpq.ServeOptions{Workers: 4, Index: true, Shared: shared})
//	defer a.Close()
//	b := mpq.NewServer(mpq.ServeOptions{Workers: 4, Index: true, Shared: shared,
//		CacheBytes: 256 << 20})
//	defer b.Close()
//	tpl := mpq.ServeTemplate{Workload: mpq.WorkloadConfig{
//		Tables: 6, Params: 2, Shape: mpq.Clique, Seed: 7,
//	}}
//	prepA, _ := a.Prepare(context.Background(), tpl) // optimizes, publishes
//	prepB, _ := b.Prepare(context.Background(), tpl) // from the store
//	fmt.Println(prepA.Key == prepB.Key, prepB.Cached,
//		b.Stats().SharedHits) // true true 1
//
// Pick results are byte-identical whichever way the plan set arrived
// (computed, loaded from the shared dir, or fetched from a peer), and
// Close flushes the store on the way out. ServeStats exposes the fleet
// counters: Cache (admitted − evicted = resident), SharedHits,
// PeerHits, SharedPuts, Reloads, Admission and DonatedTasks. See
// DESIGN.md, "Fleet serving".
//
// # Anytime Prepare
//
// ServeOptions.RefineLadder makes Prepare anytime: a deadline-bounded
// Prepare of a cold template computes the coarsest ladder generation
// that fits the budget, serves it regret-certified (each generation is
// a true ε tier, so every answer is within (1+ε) per metric of the
// exact frontier's), and refines through the finer factors in the
// background — each finished generation atomically swapped into the
// cache, the shared store, and the peer endpoint. Results say which
// generation answered (Epsilon, Generation, Final):
//
//	srv := mpq.NewServer(mpq.ServeOptions{
//		Workers: 4, RefineLadder: []float64{0.5, 0.1}, DonateWorkers: true,
//	})
//	defer srv.Close()
//	tpl := mpq.ServeTemplate{Workload: mpq.WorkloadConfig{
//		Tables: 6, Params: 2, Shape: mpq.Clique, Seed: 7,
//	}}
//	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
//	defer cancel()
//	coarse, _ := srv.Prepare(ctx, tpl)     // within the deadline
//	fmt.Println(coarse.Epsilon, coarse.Final) // 0.5 false — generation 0
//	_ = srv.WaitRefinement(context.Background())
//	final, _ := srv.Prepare(context.Background(), tpl)
//	fmt.Println(final.Epsilon, final.Final) // 0 true — the exact plan set
//
// The final generation is byte-identical to a never-refined ε = 0
// Prepare, picks within any generation are deterministic across
// origins and worker counts, and a generation swap is linearizable
// against concurrent picks. ServeStats.Refine counts the ledger
// (Scheduled, Completed, Cancelled, Failed, Skipped, CoarsePrepares,
// Swaps, CoarsePicks). See DESIGN.md, "Anytime Prepare & generation
// refinement".
//
// # Failure domains
//
// Every serving entry point takes a context: a cancelled or expired
// request is abandoned at the next cooperative checkpoint — before its
// job runs, between scheduler tasks mid-optimization — releasing its
// worker, admission slot, and singleflight key without disturbing
// concurrent requests for the same template (they retry the flight).
// Cancellation is passive, so a run that is never cancelled stays
// byte-identical to an unbounded one. A deadline-bounded Prepare
// composes with the fleet sources: bound the expensive first
// optimization, and fall back to whatever a peer has already
// published —
//
//	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
//	defer cancel()
//	prep, err := b.Prepare(ctx, tpl)
//	if errors.Is(err, context.DeadlineExceeded) {
//		// Too expensive to compute in time. A sibling may have finished
//		// it meanwhile: this retry is admitted to the shared-store and
//		// peer-fetch sources (cheap) and only recomputes if all miss.
//		prep, err = b.Prepare(context.Background(), tpl)
//	}
//
// Peer fetches retry transient failures with jittered exponential
// backoff behind a per-peer circuit breaker (PeerOptions), and every
// response is validated — size limit, content hash, document probe —
// so a corrupt peer response degrades to a counted miss, never a
// poisoned cache entry. The on-disk stores write through fsync'd
// temp-file-plus-rename; a blob that disagrees with its manifest is
// quarantined and recomputed, and ServeStats counts every failure
// kind (Cancellations, DeadlineExpiries, PeerRetries,
// PeerBreakerTrips, QuarantinedBlobs). See DESIGN.md, "Failure
// domains".
//
// # Observability
//
// A running mpqserve is scrapable: every ServeStats field is exported
// in the Prometheus text format on GET /metrics (internal/obs, a
// zero-dependency registry), Prepare flights are traced per phase
// (admission wait, queue wait, lookup, optimize, index build, save)
// into a bounded ring served as histograms and as JSON on
// GET /debug/traces, and -telemetry-dir persists per-template
// histograms of requested pick points across restarts — the recording
// half of workload-driven re-optimization. Scraping a server:
//
//	mpqserve -addr :8080 -telemetry-dir /var/lib/mpq/telemetry &
//	curl -s localhost:8080/metrics | grep -E 'mpq_(prepares|picks)_total'
//	curl -s localhost:8080/debug/traces | jq '.events[0].phases'
//
// -metrics-addr moves the scrape and debug endpoints (including
// opt-in -pprof profiling) to a dedicated listener; -log emits a
// JSON-lines access log on stderr. See DESIGN.md, "Observability".
//
// # Enforced invariants
//
// The determinism, context-flow, atomic-discipline, and float-epsilon
// contracts above are enforced at compile time by the repo's own
// go/analysis suite: `go run ./cmd/mpqlint ./...` must exit clean, and
// CI keeps it that way. Deliberate waivers are annotated in place with
// `//mpq:<kind> <reason>` directives. See DESIGN.md, "Static analysis
// & enforced invariants", and the analyzers under internal/analysis.
//
// The subpackages under internal implement the machinery: geometry
// (polytopes, simplex LP solver, region difference, convexity
// recognition), pwl (piecewise-linear cost functions), region
// (relevance regions), catalog/workload (schemas and random query
// generation), cloud (the time/fees cost model of the paper's
// evaluation), core (the optimizer), baseline (comparison algorithms
// and exhaustive ground truth), sampled (a non-PWL cost algebra for
// the generic algorithm), store (the versioned plan-set serialization
// format), selection (run-time plan selection policies), serve (the
// optimizer-as-a-service layer), fleet (the memory-bounded cache,
// shared plan-set store, peer fetches and admission control behind
// fleet serving), obs (the metrics registry, exposition
// parser/linter, Prepare trace ring and pick-point telemetry) and
// bench (the Figure 12 experiment harness with its CI regression
// gate).
package mpq
